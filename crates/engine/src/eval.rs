//! Bottom-up fixpoint evaluation: naive and semi-naive.
//!
//! The evaluator exposes a round-at-a-time [`Evaluator::step`] API in
//! addition to [`Evaluator::run`], so that the evaluation-based semantic
//! optimization baseline (Chakravarthy et al. / Lee & Han style, built in
//! `semrec-core`) can interpose per-iteration work — exactly the run-time
//! overhead the paper's program-transformation approach avoids.
//!
//! ## Execution model
//!
//! Each round collects the compiled plans that must run, then executes
//! them either inline (serial) or on the persistent
//! [`WorkerPool`](crate::pool::WorkerPool) as a **two-phase batch**.
//! Phase one is the join phase, with two axes of parallelism:
//! *rule-level* (independent plans run concurrently) and *data-level* (a
//! plan whose seed scan covers a large row range is split into
//! per-worker [`RowRange`] chunks). Each join task hash-routes its
//! derived tuples into `K = next_pow2(threads)` per-shard flat buffers
//! (`shard = fxhash(row) & (K - 1)`). Phase two is the merge phase: one
//! pool job per shard dedups that shard's tuples against a private
//! prehashed set plus read-only probes of the (round-immutable)
//! relations. Because equal rows always hash to the same shard, the
//! shards' tuple spaces are disjoint and the merge needs no locks. The
//! control thread then only concatenates the accepted shard segments
//! into the relations' delta windows
//! ([`Relation::commit_new_rows`]) — dedup and insertion scale with the
//! workers instead of serializing behind the control thread.
//!
//! Rounds whose seed-row volume is below an **adaptive serial cutover**
//! run entirely on the control thread: the threshold is derived from the
//! pool's measured per-job dispatch cost
//! ([`WorkerPool::dispatch_cost_nanos`]), an online estimate of per-row
//! work, and the machine's effective parallelism — not a hard-coded row
//! count. See [`Cutover`] for the override used by tests and benchmarks.

use crate::database::Database;
use crate::error::EngineError;
use crate::fxhash::{hash_slice, FxHashMap, PrehashedMap};
use crate::governor::{Budget, CancelToken, Governor, POLL_MASK};
use crate::plan::{
    compile_rule_with_sizes, ArgPat, BatchKernel, CompiledRule, KernelGuard, KernelSrc, Source,
    Step, View, MAX_KERNEL_PROBES,
};
#[cfg(doc)]
use crate::plan::{KernelCompute, MAX_KERNEL_COMPUTES};
use crate::pool::{Job, WorkerPool};
use crate::relation::{CodeMap, ProbeHandle, Relation, RowRange, Tuple};
use crate::stats::{PoolStats, Stats};
use semrec_datalog::atom::{Atom, Pred};
use semrec_datalog::program::Program;
use semrec_datalog::term::{Term, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::mpsc::channel;
use std::sync::Mutex;
use std::time::Instant;

/// Fixpoint strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Re-evaluate every rule against the full IDB each round.
    Naive,
    /// Classic semi-naive differentiation with one delta variant per IDB
    /// subgoal occurrence.
    SemiNaive,
}

/// Which evaluation route produced an [`EvalResult`]. Plain evaluation
/// always reports [`Route::Direct`]; the governed optimizing runner in
/// `semrec-core` overwrites this to record whether the semantically
/// optimized program answered or the degradation policy fell back to
/// the rectified program.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Route {
    /// The program was evaluated as given.
    #[default]
    Direct,
    /// The semantically optimized (residue-pruned) program answered.
    Optimized,
    /// The optimized route failed or exhausted its budget slice; the
    /// rectified program answered under the remaining budget.
    RectifiedFallback,
    /// An incremental maintenance pass (delta-insert and/or DRed) updated
    /// the optimized program's materialization in place — the monitored
    /// integrity constraints still hold.
    IncrementalOptimized,
    /// An update violated an integrity constraint the optimizer had
    /// relied on: the optimized materialization was invalidated and the
    /// answer re-derived from the rectified program.
    IncrementalInvalidated,
}

/// The result of an evaluation: materialized IDB relations plus counters.
#[derive(Debug)]
pub struct EvalResult {
    /// Materialized IDB relations.
    pub idb: BTreeMap<Pred, Relation>,
    /// Work counters.
    pub stats: Stats,
    /// Which evaluation route produced these relations.
    pub route: Route,
    /// The cost planner's verdict, when the route was chosen by cost
    /// (the governed runner in `semrec-core`); `None` for plain
    /// evaluation.
    pub choice: Option<crate::cost::RouteChoice>,
}

impl EvalResult {
    /// The relation computed for `pred` (empty-slot `None` if never defined).
    pub fn relation(&self, pred: impl Into<Pred>) -> Option<&Relation> {
        self.idb.get(&pred.into())
    }

    /// Answers to a goal atom: tuples of the goal predicate matching the
    /// goal's constants (and repeated-variable equalities). Bound goal
    /// arguments route through the relation's dictionary index
    /// ([`answer_goal`]) instead of filtering a full scan.
    pub fn answers(&self, goal: &Atom) -> Vec<Tuple> {
        let Some(rel) = self.idb.get(&goal.pred) else {
            return Vec::new();
        };
        answer_goal(rel, goal, rel.all_rows())
    }
}

/// True if `row` matches the constants and repeated variables of `goal`.
///
/// Allocation-free: instead of building a binding map per row, a repeated
/// variable is checked against the row value at its *first* occurrence
/// (equality with the first occurrence is transitively equality with all).
/// Goal arities are tiny, so the quadratic scan over earlier argument
/// positions is cheaper than any map.
pub fn goal_matches(goal: &Atom, row: &[Value]) -> bool {
    if goal.args.len() != row.len() {
        return false;
    }
    for (i, t) in goal.args.iter().enumerate() {
        match t {
            Term::Const(c) => {
                if *c != row[i] {
                    return false;
                }
            }
            Term::Var(x) => {
                let first = goal.args[..i]
                    .iter()
                    .position(|u| matches!(u, Term::Var(y) if y == x));
                if let Some(j) = first {
                    if row[j] != row[i] {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// The binding pattern of a query goal, classified for index routing:
/// bound (constant) argument positions with their key values, plus
/// whether residual per-row checks remain after an index probe on the
/// bound columns (repeated variables impose equalities the dictionary
/// index cannot express).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GoalBindings {
    /// Argument positions carrying a constant, ascending.
    pub cols: Vec<usize>,
    /// The constants at those positions, parallel to `cols`.
    pub key: Vec<Value>,
    /// True when some variable occurs more than once: probe hits must
    /// still be verified with [`goal_matches`].
    pub residual: bool,
}

impl GoalBindings {
    /// True when no argument is bound — only a scan can answer.
    pub fn all_free(&self) -> bool {
        self.cols.is_empty()
    }
}

/// Classifies `goal`'s arguments into the bound-column key an index
/// probe can route and the residual equalities it cannot.
pub fn goal_bindings(goal: &Atom) -> GoalBindings {
    let mut b = GoalBindings::default();
    for (i, t) in goal.args.iter().enumerate() {
        match t {
            Term::Const(c) => {
                b.cols.push(i);
                b.key.push(*c);
            }
            Term::Var(x) => {
                if goal.args[..i]
                    .iter()
                    .any(|u| matches!(u, Term::Var(y) if y == x))
                {
                    b.residual = true;
                }
            }
        }
    }
    b
}

/// How often [`answer_goal_polled`] invokes its poll callback while
/// walking rows (scan fallback and large probe groups alike).
const ANSWER_POLL_EVERY: usize = 1024;

/// Answers a goal atom against one relation, routing bound arguments
/// through the dictionary index instead of scanning:
///
/// * **some arguments bound** — one [`Relation::probe_into`] on the
///   bound columns (building the index on first use; later queries pay
///   one dictionary lookup plus the matching row group), residual
///   repeated-variable equalities verified per hit;
/// * **all arguments bound** — a dedup-table membership test, no index
///   at all;
/// * **all free** — the scan fallback, filtering only when repeated
///   variables demand it.
///
/// Tuples come back in physical-row (insertion) order, exactly like the
/// scan the probe replaces. `poll` runs every [`ANSWER_POLL_EVERY`]
/// examined rows with the count of rows walked so far; returning an
/// error aborts the answer (the serving daemon maps this onto its
/// cancellation and deadline checks).
pub fn answer_goal_polled<E>(
    rel: &Relation,
    goal: &Atom,
    range: RowRange,
    mut poll: impl FnMut(usize) -> Result<(), E>,
) -> Result<Vec<Tuple>, E> {
    if goal.args.len() != rel.arity() {
        return Ok(Vec::new());
    }
    let b = goal_bindings(goal);
    // All bound: the goal names one exact tuple (no variables, so no
    // residual equalities are possible).
    if !b.cols.is_empty() && b.cols.len() == rel.arity() {
        let hit = rel.contains_in_range(&b.key, hash_slice(&b.key), range);
        return Ok(if hit { vec![b.key] } else { Vec::new() });
    }
    let mut out = Vec::new();
    if b.all_free() {
        // Scan fallback: nothing for an index to grab.
        for (i, (_, row)) in rel.iter_range(range).enumerate() {
            if i % ANSWER_POLL_EVERY == 0 {
                poll(i)?;
            }
            if !b.residual || goal_matches(goal, row) {
                out.push(row.to_vec());
            }
        }
        return Ok(out);
    }
    // Bound columns: one dictionary probe; group rows already match the
    // key, so only range/tombstone filtering (done by probe_into) and
    // residual equalities remain.
    let mut rows = Vec::new();
    rel.probe_into(&b.cols, &b.key, range, &mut rows);
    for (i, &r) in rows.iter().enumerate() {
        if i % ANSWER_POLL_EVERY == 0 {
            poll(i)?;
        }
        let row = rel.row(r);
        if !b.residual || goal_matches(goal, row) {
            out.push(row.to_vec());
        }
    }
    Ok(out)
}

/// [`answer_goal_polled`] without interruption: the shared goal-answering
/// entry point for one-shot evaluation, magic-sets answer extraction,
/// and maintained queries.
pub fn answer_goal(rel: &Relation, goal: &Atom, range: RowRange) -> Vec<Tuple> {
    match answer_goal_polled::<std::convert::Infallible>(rel, goal, range, |_| Ok(())) {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// One run of consecutive same-predicate tuples in a [`DerivedBuf`]:
/// rows `[row_start, next run's row_start)` (or to the buffer's end),
/// laid out back to back from `data_start` with `arity` values each.
#[derive(Clone, Copy, Debug)]
struct DerivedRun {
    pred: Pred,
    row_start: u32,
    data_start: u32,
    arity: u32,
}

/// Flat buffer of derived head tuples: one `Vec<Value>` shared by every
/// tuple a task derives, instead of one heap allocation per tuple. Each
/// tuple's FxHash is computed once at derivation time and carried along,
/// so shard routing, merge dedup, and final insertion all reuse it.
/// Tasks emit rule-at-a-time, so tuples form long single-predicate runs;
/// recording one [`DerivedRun`] per run instead of a `(pred, start,
/// end)` entry per tuple keeps the steady-state emission cost at the 40
/// bytes of data+hash.
#[derive(Default, Debug)]
pub(crate) struct DerivedBuf {
    /// Non-empty runs, in emission order.
    runs: Vec<DerivedRun>,
    /// `hashes[i]` is the content hash of the `i`-th tuple.
    hashes: Vec<u64>,
    data: Vec<Value>,
}

impl DerivedBuf {
    /// Books one row whose `arity` values were just appended to `data`,
    /// extending the current run or opening a new one.
    #[inline]
    fn note_row(&mut self, pred: Pred, arity: u32, h: u64) {
        let run = matches!(self.runs.last(), Some(r) if r.pred == pred && r.arity == arity);
        if !run {
            self.runs.push(DerivedRun {
                pred,
                row_start: self.hashes.len() as u32,
                data_start: self.data.len() as u32 - arity,
                arity,
            });
        }
        self.hashes.push(h);
    }

    #[inline]
    fn push_hashed(&mut self, pred: Pred, row: &[Value], h: u64) {
        self.data.extend_from_slice(row);
        self.note_row(pred, row.len() as u32, h);
    }

    /// Iterates `(pred, row, hash)` over every buffered tuple.
    fn rows(&self) -> impl Iterator<Item = (Pred, &[Value], u64)> + '_ {
        let nrows = self.hashes.len();
        self.runs.iter().enumerate().flat_map(move |(ri, run)| {
            let row_end = self
                .runs
                .get(ri + 1)
                .map_or(nrows, |r| r.row_start as usize);
            let (base, arity) = (run.data_start as usize, run.arity as usize);
            (run.row_start as usize..row_end).map(move |j| {
                let s = base + (j - run.row_start as usize) * arity;
                (run.pred, &self.data[s..s + arity], self.hashes[j])
            })
        })
    }

    fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Empties the buffer, keeping every allocation for reuse.
    fn clear(&mut self) {
        self.runs.clear();
        self.hashes.clear();
        self.data.clear();
    }
}

/// The per-task output sink: `K` shard-local [`DerivedBuf`]s, routed by
/// tuple hash. Serial rounds use `K = 1` (routing degenerates to a
/// single buffer); parallel join tasks use the round's shard count so
/// the merge phase can run one lock-free job per shard.
#[derive(Debug)]
pub(crate) struct ShardedDerivedBuf {
    shards: Vec<DerivedBuf>,
    mask: u64,
    /// Reusable staging row: head values are materialized here to be
    /// hashed before the destination shard is known.
    scratch: Vec<Value>,
}

impl ShardedDerivedBuf {
    fn new(k: usize) -> ShardedDerivedBuf {
        debug_assert!(k.is_power_of_two(), "shard count must be a power of two");
        ShardedDerivedBuf {
            shards: (0..k).map(|_| DerivedBuf::default()).collect(),
            mask: (k - 1) as u64,
            scratch: Vec::new(),
        }
    }

    /// Empties every shard, keeping allocations for the next round.
    fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
    }

    /// [`ShardedDerivedBuf::push`] for a row already materialized in a
    /// caller buffer: one hash, one slice copy, no staging iterator.
    #[inline]
    fn push_row(&mut self, pred: Pred, row: &[Value]) {
        self.push_prehashed(pred, row, hash_slice(row));
    }

    /// [`ShardedDerivedBuf::push_row`] with the content hash already
    /// known (e.g. a stored row re-emitted verbatim).
    #[inline]
    fn push_prehashed(&mut self, pred: Pred, row: &[Value], h: u64) {
        debug_assert_eq!(h, hash_slice(row), "stale row hash");
        let shard = (h & self.mask) as usize;
        self.shards[shard].push_hashed(pred, row, h);
    }

    #[inline]
    fn push(&mut self, pred: Pred, vals: impl Iterator<Item = Value>) {
        if self.mask == 0 {
            // Single shard: no routing decision, so head values stream
            // straight into the buffer and are hashed in place — the
            // staging copy exists only to route by hash.
            let buf = &mut self.shards[0];
            let start = buf.data.len();
            buf.data.extend(vals);
            let arity = (buf.data.len() - start) as u32;
            let h = hash_slice(&buf.data[start..]);
            buf.note_row(pred, arity, h);
            return;
        }
        self.scratch.clear();
        self.scratch.extend(vals);
        let h = hash_slice(&self.scratch);
        let shard = (h & self.mask) as usize;
        self.shards[shard].push_hashed(pred, &self.scratch, h);
    }
}

/// Accepted new rows of one (shard, predicate): flat data plus per-row
/// hashes, ready for [`Relation::commit_new_rows`].
struct ShardOut {
    /// Per predicate, in deterministic (`Pred`-sorted) order.
    preds: Vec<(Pred, Vec<Value>, Vec<u64>)>,
}

/// A merge job's private accumulator for one predicate: a prehashed set
/// over the rows accepted so far. No other shard can ever see an equal
/// row (equal rows share a hash, hence a shard), so this set needs no
/// synchronization.
struct MergeAcc {
    arity: usize,
    /// Row hash → indices of accepted rows with that hash.
    seen: PrehashedMap<Vec<u32>>,
    data: Vec<Value>,
    hashes: Vec<u64>,
}

impl MergeAcc {
    fn new(arity: usize) -> MergeAcc {
        MergeAcc {
            arity,
            seen: PrehashedMap::default(),
            data: Vec::new(),
            hashes: Vec::new(),
        }
    }

    fn push_if_new(&mut self, row: &[Value], h: u64) {
        let bucket = self.seen.entry(h).or_default();
        let (data, arity) = (&self.data, self.arity);
        if bucket
            .iter()
            .any(|&i| &data[i as usize * arity..(i as usize + 1) * arity] == row)
        {
            return;
        }
        bucket.push(self.hashes.len() as u32);
        self.data.extend_from_slice(row);
        self.hashes.push(h);
    }
}

#[derive(Clone)]
struct RulePlans {
    /// True if the rule has at least one delta-capable body literal, so
    /// its delta variants are worth scheduling on non-fresh rounds. In
    /// batch mode that means an IDB subgoal; in incremental mode EDB
    /// subgoals are delta-capable too (they seed rounds from the tx).
    has_deltas: bool,
    full: CompiledRule,
    deltas: Vec<CompiledRule>,
}

/// An index into the compiled-plan table, so round scheduling can be
/// computed without holding borrows of [`Evaluator::plans`] (the cutover
/// decision needs `&mut self` in between).
#[derive(Clone, Copy, Debug)]
enum PlanRef {
    /// `plans[i].full`.
    Full(usize),
    /// `plans[i].deltas[j]`.
    Delta(usize, usize),
}

/// Per probe-depth key→code memo for one compiled plan variant.
///
/// The batch pipeline resolves each sort-group's probe key to a dense
/// dictionary code through [`ProbeHandle::encode`] — one random access
/// into the relation's [`CodeMap`] per group. For *static* relations
/// (EDB predicates never change mid-fixpoint outside incremental mode)
/// the resolution is identical every round, so the serial path caches
/// positive resolutions here and replays them without touching the
/// dictionary. Invalidation is by relation generation: `gen` records
/// the probed relation's [`Relation::generation`] counter when the
/// memo was filled, and any mismatch (an incremental transaction
/// mutated the EDB — including truncate/reinsert sequences that leave
/// the row count unchanged) clears the memo wholesale before the task
/// runs. Cached codes are re-verified against live dictionary key
/// storage on every hit ([`ProbeHandle::code_key`]), so a stale code
/// can never alias a different key — the generation check keeps the
/// memo from accumulating dead entries and is what lets the serving
/// layer carry memos across published epochs soundly.
#[derive(Clone)]
struct DepthMemo {
    /// Cached key→code resolutions, keyed by the same full key hash
    /// the dictionary itself uses.
    map: CodeMap,
    /// The probed relation's mutation counter when `map` was last
    /// (in)validated; a mismatch clears. `u64::MAX` initially, so
    /// the first use always stamps.
    gen: u64,
    /// True when this depth probes a non-IDB (EDB) relation. IDB
    /// dictionaries grow almost every round, which would clear the
    /// memo before it ever hits, so only EDB depths are armed.
    edb: bool,
}

/// Kernel memos for one rule's plan variants, parallel to
/// [`RulePlans`]: one [`DepthMemo`] per probe depth of each variant's
/// [`BatchKernel`] (empty for plans without a kernel).
#[derive(Clone, Default)]
struct RuleMemos {
    full: Vec<DepthMemo>,
    deltas: Vec<Vec<DepthMemo>>,
}

/// A plan scheduled for the current round, with its seed scan resolved:
/// `seed` is the first `Scan` step's index and visible row range, `rows`
/// that range's length (0 when the plan has no resolvable seed scan).
#[derive(Clone, Copy)]
struct PlanSeed {
    pref: PlanRef,
    seed: Option<(usize, RowRange)>,
    rows: u64,
}

/// One schedulable unit of a round: a plan, optionally restricted to a
/// chunk of its seed scan's row range (data parallelism).
#[derive(Clone, Copy)]
struct Task<'p> {
    plan: &'p CompiledRule,
    /// `(step index, row subrange)` for the partitioned seed scan.
    part: Option<(usize, RowRange)>,
}

/// When to hand a round to the worker pool instead of the control
/// thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Cutover {
    /// Adaptive (the default): a round runs on the pool only when its
    /// seed-row volume exceeds a threshold derived from the pool's
    /// measured per-job dispatch cost, an online per-row work estimate,
    /// and the machine's effective parallelism. On hardware where
    /// `std::thread::available_parallelism()` is 1, the pool is never
    /// even spawned — parallelism cannot win there.
    #[default]
    Auto,
    /// Every non-empty round runs on the pool, and seed scans split at a
    /// minimal chunk size. For tests and benchmarks that must exercise
    /// the parallel machinery regardless of hardware.
    ForceParallel,
    /// A fixed seed-row threshold (the pre-cutover behavior, kept for
    /// experiments).
    MinRows(u64),
}

/// The evaluator knobs a long-lived owner re-applies to every internal
/// evaluation it launches — the incremental materialization layer and
/// the serving daemon construct many [`Evaluator`]s over a program's
/// lifetime, and agreement tests need all of them to run under the same
/// configuration (threads × [`Cutover`] × kernels on/off).
#[derive(Clone, Copy, Debug)]
pub struct Tuning {
    /// Worker threads ([`Evaluator::with_parallelism`]).
    pub threads: usize,
    /// Pool cutover policy ([`Evaluator::with_cutover`]).
    pub cutover: Cutover,
    /// Batch kernels on/off ([`Evaluator::with_kernels`]).
    pub kernels: bool,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            threads: 1,
            cutover: Cutover::Auto,
            kernels: true,
        }
    }
}

impl Tuning {
    /// Default tuning with `threads` workers.
    pub fn with_threads(threads: usize) -> Tuning {
        Tuning {
            threads,
            ..Tuning::default()
        }
    }
}

/// Rounds below this many seed rows never spawn the pool in
/// [`Cutover::Auto`] mode — spawning + calibrating costs more than any
/// such round. Once a round crosses this floor the pool is spawned and
/// the measured threshold takes over.
const PRE_POOL_FLOOR_ROWS: u64 = 512;

/// Initial estimate of per-seed-row work, refined online per round.
const INITIAL_ROW_NANOS: f64 = 150.0;

/// A program compiled once for incremental evaluation and reusable
/// across transactions: rule plans (full + delta variants, with EDB
/// subgoals delta-capable), strata, and arities. Keyed by the caller on
/// (program, strata) identity — the incremental maintenance layer
/// builds one `Prepared` per maintained program and hands it to
/// [`Evaluator::from_prepared`] for every transaction, skipping rule
/// compilation on the per-update hot path.
#[derive(Clone)]
pub struct Prepared {
    program: Program,
    idb_preds: BTreeSet<Pred>,
    plans: Vec<RulePlans>,
    rule_stratum: Vec<usize>,
    max_stratum: usize,
    arities: BTreeMap<Pred, usize>,
}

impl Prepared {
    /// Compiles `program` against `db` in incremental mode. The database
    /// is used only for join-order size estimates; the plans stay valid
    /// as the EDB evolves.
    pub fn compile(db: &Database, program: &Program) -> Result<Prepared, EngineError> {
        let arities = program.arities().map_err(EngineError::ArityMismatch)?;
        let mut ev = Evaluator::new(db, &Program::default(), Strategy::SemiNaive)?;
        ev.incremental = true;
        ev.set_program(program)?;
        Ok(Prepared {
            program: ev.program,
            idb_preds: ev.idb_preds,
            plans: ev.plans,
            rule_stratum: ev.rule_stratum,
            max_stratum: ev.max_stratum,
            arities,
        })
    }

    /// Highest stratum in the prepared program (0 ⇔ negation-free).
    /// Incremental propagation is only sound at stratum 0; callers fall
    /// back to batch evaluation otherwise.
    pub fn max_stratum(&self) -> usize {
        self.max_stratum
    }

    /// The prepared program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The IDB predicates (head predicates plus any preloaded ones).
    pub fn idb_preds(&self) -> &BTreeSet<Pred> {
        &self.idb_preds
    }

    /// Declared arity of every predicate in the program.
    pub fn arities(&self) -> &BTreeMap<Pred, usize> {
        &self.arities
    }
}

/// A resumable fixpoint evaluator over a fixed EDB.
pub struct Evaluator<'db> {
    db: &'db Database,
    program: Program,
    strategy: Strategy,
    idb_preds: BTreeSet<Pred>,
    idb: FxHashMap<Pred, Relation>,
    /// Per IDB predicate: `(old_end, total_end)`; delta is the range
    /// between them, rows beyond `total_end` were derived this round.
    marks: FxHashMap<Pred, (u32, u32)>,
    plans: Vec<RulePlans>,
    /// Stratum of each rule (by head predicate).
    rule_stratum: Vec<usize>,
    /// Highest stratum present.
    max_stratum: usize,
    /// The stratum currently being saturated.
    current_stratum: usize,
    /// True when the current stratum has not run its initializing
    /// full-plan round yet.
    stratum_fresh: bool,
    stats: Stats,
    pool_stats: PoolStats,
    round: u64,
    max_iterations: u64,
    /// Resource limits for this evaluation (default: unlimited).
    budget: Budget,
    /// External cancellation, when the caller attached a token.
    cancel: Option<CancelToken>,
    /// Armed on the first [`Evaluator::step`] when a deadline or cancel
    /// token needs cooperative checks; `None` keeps the hot-path poll a
    /// single `Option` discriminant test.
    gov: Option<Governor>,
    /// Number of worker threads for plan execution within a round.
    parallelism: usize,
    /// Lazily spawned persistent worker pool (parallel mode only).
    pool: Option<WorkerPool>,
    /// Serial-cutover policy for parallel mode.
    cutover: Cutover,
    /// Merge-shard count override (default `next_pow2(parallelism)`).
    shards: Option<usize>,
    /// Incremental mode: EDB subgoals become delta-capable and resolve
    /// their old/delta views through `edb_marks` instead of the full row
    /// range. Entered via [`Evaluator::new_incremental`] /
    /// [`Evaluator::from_prepared`]; batch construction leaves it off
    /// and nothing on the batch path changes.
    incremental: bool,
    /// Per EDB predicate, the physical-row watermark separating pre-tx
    /// rows (`[0, mark)` = Old) from rows the current transaction
    /// appended (`[mark, len)` = Delta). Predicates absent from the map
    /// have an empty delta. Drained (mark := len) after each round so
    /// later rounds see the post-tx EDB as Old.
    edb_marks: FxHashMap<Pred, u32>,
    /// Online estimate of nanoseconds of round work per seed row,
    /// exponentially weighted over completed rounds.
    row_nanos_ewma: f64,
    /// Route plans with a compiled [`BatchKernel`] to the specialized
    /// batch executor (default). Off forces every plan through the
    /// general step machine — the agreement tests compare both routes.
    kernels: bool,
    /// The serial round's persistent output buffer: cleared (capacity
    /// kept) after each drain, so a many-round fixpoint with small
    /// deltas — a long chain derives a few hundred rows per round —
    /// pays its emission-buffer growth once, not once per round.
    serial_buf: ShardedDerivedBuf,
    /// EDB-stable key→code memos, parallel to `plans` (one entry per
    /// probe depth of each plan variant's kernel; see [`DepthMemo`]).
    /// Serial rounds thread the scheduled plan's memo through
    /// [`run_kernel`]; parallel rounds pass `None` (round jobs share
    /// `&self`, and the pool path amortizes differently anyway).
    memos: Vec<RuleMemos>,
}

impl<'db> Evaluator<'db> {
    /// Builds an evaluator; compiles every rule.
    pub fn new(
        db: &'db Database,
        program: &Program,
        strategy: Strategy,
    ) -> Result<Evaluator<'db>, EngineError> {
        let mut ev = Evaluator {
            db,
            program: Program::default(),
            strategy,
            idb_preds: BTreeSet::new(),
            idb: FxHashMap::default(),
            marks: FxHashMap::default(),
            plans: Vec::new(),
            rule_stratum: Vec::new(),
            max_stratum: 0,
            current_stratum: 0,
            stratum_fresh: true,
            stats: Stats::default(),
            pool_stats: PoolStats::default(),
            round: 0,
            max_iterations: u64::MAX,
            budget: Budget::unlimited(),
            cancel: None,
            gov: None,
            parallelism: 1,
            pool: None,
            cutover: Cutover::Auto,
            shards: None,
            incremental: false,
            edb_marks: FxHashMap::default(),
            row_nanos_ewma: INITIAL_ROW_NANOS,
            kernels: true,
            serial_buf: ShardedDerivedBuf::new(1),
            memos: Vec::new(),
        };
        ev.set_program(program)?;
        Ok(ev)
    }

    /// Builds an *incremental* evaluator: `idb` is a previously
    /// materialized fixpoint of `program` over the pre-transaction EDB,
    /// and `edb_marks` records, per EDB predicate, the physical row
    /// watermark below which rows predate the transaction. Running this
    /// evaluator to fixpoint performs semi-naive delta-insert
    /// propagation: the first round is seeded from the EDB rows at or
    /// above their watermark (plus any preloaded IDB rows beyond
    /// `preloaded_old`, see [`Evaluator::from_prepared`]) rather than
    /// from the whole database, and EDB watermarks drain after each
    /// round.
    ///
    /// Only sound for positive programs (a stratified program's higher
    /// strata would need full re-evaluation under changed lower strata);
    /// construction fails with [`EngineError::NotStratified`]-free
    /// programs only, and callers must check [`Prepared::max_stratum`]
    /// or fall back to batch evaluation when negation is present.
    ///
    /// # Panics
    /// In debug builds, panics if a preloaded relation has tombstones
    /// (the incremental layer compacts before preloading) or if the
    /// program has more than one stratum.
    pub fn new_incremental(
        db: &'db Database,
        program: &Program,
        idb: impl IntoIterator<Item = (Pred, Relation)>,
        edb_marks: FxHashMap<Pred, u32>,
    ) -> Result<Evaluator<'db>, EngineError> {
        let mut ev = Evaluator::new(db, &Program::default(), Strategy::SemiNaive)?;
        ev.incremental = true;
        ev.edb_marks = edb_marks;
        ev.preload(idb);
        ev.set_program(program)?;
        debug_assert_eq!(
            ev.max_stratum, 0,
            "incremental mode requires a positive program"
        );
        ev.stratum_fresh = false;
        Ok(ev)
    }

    /// Like [`Evaluator::new_incremental`], but reuses the compiled
    /// plans of a [`Prepared`] program instead of recompiling — the
    /// prepared-plan cache path for repeated transactions against the
    /// same program.
    pub fn from_prepared(
        db: &'db Database,
        prepared: &Prepared,
        idb: impl IntoIterator<Item = (Pred, Relation)>,
        edb_marks: FxHashMap<Pred, u32>,
    ) -> Result<Evaluator<'db>, EngineError> {
        let mut ev = Evaluator::new(db, &Program::default(), Strategy::SemiNaive)?;
        ev.incremental = true;
        ev.edb_marks = edb_marks;
        ev.preload(idb);
        debug_assert_eq!(
            prepared.max_stratum, 0,
            "incremental mode requires a positive program"
        );
        ev.program = prepared.program.clone();
        ev.idb_preds = prepared.idb_preds.clone();
        ev.plans = prepared.plans.clone();
        ev.rule_stratum = prepared.rule_stratum.clone();
        ev.max_stratum = prepared.max_stratum;
        ev.build_memos();
        for (&p, &n) in &prepared.arities {
            if ev.idb_preds.contains(&p) {
                ev.idb.entry(p).or_insert_with(|| Relation::new(n));
                ev.marks.entry(p).or_insert((0, 0));
            }
        }
        ev.stratum_fresh = false;
        Ok(ev)
    }

    /// Adopts previously materialized IDB relations, marking every row
    /// as Old (rows a caller appended *after* recording `preloaded_old`
    /// become the first round's IDB delta — the DRed rederivation path
    /// uses this to propagate re-inserted tuples).
    fn preload(&mut self, idb: impl IntoIterator<Item = (Pred, Relation)>) {
        for (p, rel) in idb {
            // Tombstoned relations (DRed over-deletion) are fine: marks
            // are physical-row watermarks, and every scan and probe
            // path skips dead rows.
            let end = rel.physical_rows() as u32;
            self.marks.insert(p, (end, end));
            self.idb.insert(p, rel);
        }
    }

    /// Rewinds the preloaded-Old watermark of `pred` to `old_end`: rows
    /// `[old_end, len)` become the first round's delta for that IDB
    /// predicate. Used by the DRed pass to propagate tuples it
    /// re-inserted after over-deletion.
    pub fn set_idb_delta_start(&mut self, pred: Pred, old_end: u32) {
        if let Some(rel) = self.idb.get(&pred) {
            let total = rel.physical_rows() as u32;
            self.marks.insert(pred, (old_end.min(total), total));
        }
    }

    /// Caps the number of fixpoint rounds (default: unlimited).
    pub fn with_max_iterations(mut self, n: u64) -> Self {
        self.max_iterations = n;
        self
    }

    /// Applies a resource [`Budget`]. Row, byte and iteration caps are
    /// enforced at round boundaries on the control thread; a deadline is
    /// also checked cooperatively inside scan loops and merge jobs, so
    /// it can interrupt a round in flight. An aborted round's partial
    /// derivations are discarded — the IDB stays exactly as the last
    /// completed round left it.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        if let Some(n) = budget.max_iterations {
            self.max_iterations = n;
        }
        self.budget = budget;
        self
    }

    /// Attaches a [`CancelToken`]: calling
    /// [`cancel`](CancelToken::cancel) on any clone of `token` makes the
    /// evaluation return [`EngineError::Cancelled`] at its next
    /// cooperative check, mid-round included.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Executes the round's rule plans on `n` worker threads (default 1).
    /// Results and the workload counters (`derived`, `rows_scanned`,
    /// `inserted`) are identical to the sequential mode; only relation
    /// insertion order, scheduling counters and wall time change.
    pub fn with_parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// Overrides the serial-cutover policy (default [`Cutover::Auto`]).
    pub fn with_cutover(mut self, cutover: Cutover) -> Self {
        self.cutover = cutover;
        self
    }

    /// Applies a whole [`Tuning`] bundle (threads, cutover, kernels) in
    /// one call — the entry point for owners that thread one tuning
    /// value through every evaluation they launch.
    pub fn with_tuning(self, t: Tuning) -> Self {
        self.with_parallelism(t.threads)
            .with_cutover(t.cutover)
            .with_kernels(t.kernels)
    }

    /// Overrides the merge-shard count (rounded up to a power of two;
    /// default `next_pow2(parallelism)`). Shard count never affects the
    /// computed IDB — see `tests/parallel_agreement.rs`.
    pub fn with_shards(mut self, k: usize) -> Self {
        self.shards = Some(k.max(1).next_power_of_two());
        self
    }

    /// Enables or disables the specialized join kernels (default: on).
    /// With kernels off, every plan runs on the general step machine;
    /// the computed IDB is identical either way (see
    /// `tests/kernel_agreement.rs`).
    pub fn with_kernels(mut self, enabled: bool) -> Self {
        self.kernels = enabled;
        self
    }

    /// The merge-shard count `K` for parallel rounds.
    fn shard_count(&self) -> usize {
        self.shards
            .unwrap_or_else(|| self.parallelism.next_power_of_two())
    }

    /// Worker threads that can actually run simultaneously: the requested
    /// parallelism capped by the machine's scheduler-visible CPUs.
    fn effective_workers(&self) -> usize {
        machine_cpus().min(self.parallelism)
    }

    /// Replaces the program mid-evaluation, keeping derived IDB facts.
    /// Used by the evaluation-based optimization baseline, which rewrites
    /// the rule set between rounds.
    pub fn set_program(&mut self, program: &Program) -> Result<(), EngineError> {
        let arities = program.arities().map_err(EngineError::ArityMismatch)?;
        let mut idb_preds = program.idb_preds();
        idb_preds.extend(self.idb.keys().copied());
        for (&p, &n) in &arities {
            if idb_preds.contains(&p) {
                self.idb.entry(p).or_insert_with(|| Relation::new(n));
                self.marks.entry(p).or_insert((0, 0));
            }
        }
        // Relation sizes for join ordering: EDB sizes are known; IDB
        // relations use their current size (0 before the first round) but
        // are never preferred over a known-small EDB relation on ties —
        // mark them unknown instead.
        let mut sizes: BTreeMap<Pred, usize> = BTreeMap::new();
        for (p, rel) in self.db.iter() {
            sizes.insert(p, rel.len());
        }
        for p in &idb_preds {
            sizes.remove(p);
        }
        // Delta-capable body positions: IDB subgoals always; in
        // incremental mode every non-builtin subgoal, so transaction-
        // inserted EDB rows can seed the first round's delta plans
        // (derived from the program, not the current EDB contents — a
        // tx may insert into a predicate that is empty today). EDB
        // deltas drain after one round (see `step`), so the extra
        // variants are idle from round 2 on.
        let incremental = self.incremental;
        let delta_capable = |a: &Atom| {
            idb_preds.contains(&a.pred)
                || (incremental && crate::builtins::BuiltinOp::of(a.pred).is_none())
        };
        let mut plans = Vec::with_capacity(program.len());
        for rule in &program.rules {
            let idb_lits: Vec<usize> = rule
                .body
                .iter()
                .enumerate()
                .filter(|(_, l)| l.as_atom().is_some_and(&delta_capable))
                .map(|(i, _)| i)
                .collect();
            // Negated IDB subgoals read the Total view of their (strictly
            // lower) stratum, which is complete by the time this rule runs.
            let neg_idb: Vec<usize> = rule
                .body
                .iter()
                .enumerate()
                .filter(|(_, l)| l.as_neg().is_some_and(|a| idb_preds.contains(&a.pred)))
                .map(|(i, _)| i)
                .collect();
            let mut views: BTreeMap<usize, View> = BTreeMap::new();
            for &li in &idb_lits {
                views.insert(li, View::Total);
            }
            for &li in &neg_idb {
                views.insert(li, View::Total);
            }
            let full = compile_rule_with_sizes(rule, &views, None, &sizes)?;
            let mut deltas = Vec::new();
            for (k, &li) in idb_lits.iter().enumerate() {
                let mut v = BTreeMap::new();
                for (j, &lj) in idb_lits.iter().enumerate() {
                    v.insert(
                        lj,
                        match j.cmp(&k) {
                            std::cmp::Ordering::Less => View::Total,
                            std::cmp::Ordering::Equal => View::Delta,
                            std::cmp::Ordering::Greater => View::Old,
                        },
                    );
                }
                for &lj in &neg_idb {
                    v.insert(lj, View::Total);
                }
                deltas.push(compile_rule_with_sizes(rule, &v, Some(li), &sizes)?);
            }
            plans.push(RulePlans {
                has_deltas: !idb_lits.is_empty(),
                full,
                deltas,
            });
        }
        let strata = stratify(program, &idb_preds)?;
        self.rule_stratum = program
            .rules
            .iter()
            .map(|r| strata.get(&r.head.pred).copied().unwrap_or(0))
            .collect();
        self.max_stratum = self.rule_stratum.iter().copied().max().unwrap_or(0);
        self.current_stratum = self.current_stratum.min(self.max_stratum);
        self.program = program.clone();
        self.idb_preds = idb_preds;
        self.plans = plans;
        self.build_memos();
        Ok(())
    }

    /// (Re)derives the kernel memo table from the current plans: one
    /// [`DepthMemo`] per probe depth of each variant's kernel, armed
    /// only for EDB depths. Called whenever `plans` is replaced — both
    /// [`set_program`](Evaluator::set_program) and the prepared-plan
    /// copy in [`Evaluator::from_prepared`].
    fn build_memos(&mut self) {
        let depth_memos = |rule: &CompiledRule| -> Vec<DepthMemo> {
            rule.kernel.as_ref().map_or_else(Vec::new, |k| {
                k.probes
                    .iter()
                    .map(|p| DepthMemo {
                        map: CodeMap::default(),
                        gen: u64::MAX,
                        edb: !self.idb_preds.contains(&p.pred),
                    })
                    .collect()
            })
        };
        let memos = self
            .plans
            .iter()
            .map(|rp| RuleMemos {
                full: depth_memos(&rp.full),
                deltas: rp.deltas.iter().map(depth_memos).collect(),
            })
            .collect();
        self.memos = memos;
    }

    /// The current (partial) contents of an IDB relation.
    pub fn idb_relation(&self, pred: Pred) -> Option<&Relation> {
        self.idb.get(&pred)
    }

    /// Number of completed rounds.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Stats accumulated so far.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Round-execution counters accumulated so far. Serial rounds fill
    /// the wall-time-based `serial_*` fields, so throughput metrics are
    /// populated (and comparable) at every thread count.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool_stats
    }

    /// Runs fixpoint rounds until some new fact is derived or every
    /// stratum is saturated. Returns `true` if any new fact was derived
    /// (callers loop on this; see [`Evaluator::run`]).
    pub fn step(&mut self) -> Result<bool, EngineError> {
        if self.gov.is_none() && (self.budget.deadline.is_some() || self.cancel.is_some()) {
            self.gov = Some(Governor::new(
                &self.budget,
                self.cancel.clone().unwrap_or_default(),
            ));
        }
        loop {
            if let Some(g) = &self.gov {
                if g.should_abort() {
                    return Err(g.reason().unwrap_or(EngineError::Cancelled));
                }
            }
            #[cfg(feature = "failpoints")]
            crate::failpoint::hit("eval.round").map_err(EngineError::Io)?;
            if self.round >= self.max_iterations {
                return Err(EngineError::IterationLimit(self.max_iterations as usize));
            }
            self.round += 1;
            let fresh = self.stratum_fresh;
            self.stratum_fresh = false;

            let mut stats = std::mem::take(&mut self.stats);
            stats.iterations += 1;
            let mut to_run: Vec<PlanRef> = Vec::new();
            for (ri, rp) in self.plans.iter().enumerate() {
                if self.rule_stratum[ri] != self.current_stratum {
                    continue;
                }
                let run_full = matches!(self.strategy, Strategy::Naive) || fresh;
                if run_full {
                    to_run.push(PlanRef::Full(ri));
                } else if rp.has_deltas {
                    to_run.extend((0..rp.deltas.len()).map(|di| PlanRef::Delta(ri, di)));
                }
            }

            // Resolve every plan's seed scan once: the row volume drives
            // the serial-cutover decision and the split threshold.
            let plan_seeds: Vec<PlanSeed> = to_run
                .iter()
                .map(|&pref| {
                    let plan = self.plan(pref);
                    let seed = plan.steps.iter().enumerate().find_map(|(i, s)| match s {
                        Step::Scan(sc) => Some((i, sc)),
                        _ => None,
                    });
                    let resolved = seed
                        .and_then(|(si, sc)| self.resolve(sc.pred, sc.view).map(|(_, r)| (si, r)));
                    PlanSeed {
                        pref,
                        seed: resolved,
                        rows: resolved.map_or(0, |(_, r)| r.len() as u64),
                    }
                })
                .collect();
            let total_rows: u64 = plan_seeds.iter().map(|p| p.rows).sum();

            let parallel = !plan_seeds.is_empty() && self.decide_parallel(total_rows);
            let mut delta = PoolStats::default();
            let any_new = if parallel {
                let (d, outs) = match self.run_round_parallel(&plan_seeds, &mut stats) {
                    Ok(v) => v,
                    Err(e) => {
                        self.stats = stats;
                        return Err(e);
                    }
                };
                // A cooperative trip mid-round (deadline, cancellation)
                // made the tasks bail early: discard the round's partial
                // derivations by never committing them.
                if let Some(err) = self.trip_reason() {
                    self.stats = stats;
                    return Err(err);
                }
                delta = d;
                let concat_start = Instant::now();
                let mut any_new = false;
                for out in outs {
                    for (pred, data, hashes) in out.preds {
                        let rel = self
                            .idb
                            .get_mut(&pred)
                            .expect("derived tuple for unknown idb predicate");
                        let before = rel.regrows();
                        let n = rel.commit_new_rows(&data, &hashes);
                        stats.dedup_regrows += rel.regrows() - before;
                        stats.inserted += n as u64;
                        any_new |= n > 0;
                    }
                }
                delta.concat_nanos = concat_start.elapsed().as_nanos() as u64;
                any_new
            } else {
                let serial_start = Instant::now();
                // Reuse the evaluator-owned single-shard buffer: taken
                // out for the round (its field borrow would conflict
                // with `execute_task`'s `&self`) and restored cleared.
                let mut buf = std::mem::replace(&mut self.serial_buf, ShardedDerivedBuf::new(1));
                // Kernel memos are serial-only evaluator state, taken
                // out the same way and restored after the round.
                let mut memos = std::mem::take(&mut self.memos);
                let mut aborted = false;
                for ps in &plan_seeds {
                    let memo = match ps.pref {
                        PlanRef::Full(ri) => &mut memos[ri].full,
                        PlanRef::Delta(ri, di) => &mut memos[ri].deltas[di],
                    };
                    let done = self.execute_task(
                        Task {
                            plan: self.plan(ps.pref),
                            part: None,
                        },
                        &mut stats,
                        &mut buf,
                        Some(memo),
                    );
                    if !done {
                        aborted = true;
                        break;
                    }
                }
                self.memos = memos;
                if aborted {
                    self.stats = stats;
                    let err = self.trip_reason().unwrap_or(EngineError::Cancelled);
                    return Err(err);
                }
                let any_new = drain_serial(&buf, &mut self.idb, &mut stats);
                buf.clear();
                self.serial_buf = buf;
                delta.serial_rounds = 1;
                // Parallel mode, serial round: the adaptive cutover (or
                // the single-CPU guard) vetoed pool dispatch — record
                // the decision so staying-serial-on-small-rounds is
                // observable in `PoolStats`, not inferred from timing.
                delta.cutover_serial_rounds = (self.parallelism > 1) as u64;
                delta.serial_rows = total_rows;
                delta.serial_nanos = serial_start.elapsed().as_nanos() as u64;
                any_new
            };
            // Refine the per-row work estimate from this round.
            if total_rows > 0 {
                let exec_nanos = if parallel {
                    delta.busy_nanos
                } else {
                    delta.serial_nanos
                };
                let sample = (exec_nanos as f64 / total_rows as f64).clamp(5.0, 100_000.0);
                self.row_nanos_ewma = 0.7 * self.row_nanos_ewma + 0.3 * sample;
            }
            self.stats = stats;
            self.merge_pool_stats(delta);
            // Advance delta windows.
            for (p, rel) in &self.idb {
                let (_, total_end) = self.marks[p];
                self.marks
                    .insert(*p, (total_end, rel.physical_rows() as u32));
            }
            // Drain EDB deltas: the first round consumed the
            // transaction's inserted rows; from now on the post-tx EDB
            // is the Old view, so new-IDB × EDB joins in later rounds
            // see every EDB row exactly once.
            if self.incremental {
                for (p, m) in self.edb_marks.iter_mut() {
                    if let Some(rel) = self.db.get(*p) {
                        *m = rel.physical_rows() as u32;
                    }
                }
            }
            // Round-boundary budget checks: the round's rows stay
            // committed (the IDB is consistent); evaluation just stops.
            if let Some(err) = self.check_round_budget() {
                return Err(err);
            }
            if any_new {
                return Ok(true);
            }
            if self.current_stratum >= self.max_stratum {
                return Ok(false);
            }
            self.current_stratum += 1;
            self.stratum_fresh = true;
        }
    }

    /// The cooperative governance check, polled from hot loops behind
    /// [`POLL_MASK`]. Ungoverned evaluations pay one `Option`
    /// discriminant test.
    #[inline]
    fn should_abort(&self) -> bool {
        match &self.gov {
            Some(g) => g.should_abort(),
            None => false,
        }
    }

    /// The governor's trip reason, if a cooperative check fired.
    fn trip_reason(&self) -> Option<EngineError> {
        self.gov.as_ref().and_then(Governor::reason)
    }

    /// Round-boundary budget enforcement over the committed IDB state.
    fn check_round_budget(&self) -> Option<EngineError> {
        if let Some(limit) = self.budget.max_idb_rows {
            let used: u64 = self.idb.values().map(|r| r.len() as u64).sum();
            if used > limit {
                return Some(EngineError::BudgetExceeded {
                    resource: "idb_rows",
                    limit,
                    used,
                });
            }
        }
        if let Some(limit) = self.budget.max_resident_bytes {
            let used: u64 = self.idb.values().map(Relation::estimated_bytes).sum();
            if used > limit {
                return Some(EngineError::BudgetExceeded {
                    resource: "resident_bytes",
                    limit,
                    used,
                });
            }
        }
        None
    }

    /// Verifies every IDB relation's structural invariant (flat storage
    /// and dedup index in sync — see [`Relation::check_invariant`]).
    /// Fault-injection tests call this after aborted evaluations to
    /// prove partial rounds were discarded cleanly.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (p, rel) in &self.idb {
            rel.check_invariant().map_err(|e| format!("{p:?}: {e}"))?;
        }
        Ok(())
    }

    /// The compiled plan a [`PlanRef`] points at.
    fn plan(&self, pref: PlanRef) -> &CompiledRule {
        match pref {
            PlanRef::Full(ri) => &self.plans[ri].full,
            PlanRef::Delta(ri, di) => &self.plans[ri].deltas[di],
        }
    }

    /// Decides whether this round's `total_rows` seed rows warrant the
    /// pool, spawning it (lazily, once) when the answer can be yes.
    fn decide_parallel(&mut self, total_rows: u64) -> bool {
        if self.parallelism <= 1 {
            return false;
        }
        match self.cutover {
            Cutover::ForceParallel => {
                self.ensure_pool();
                true
            }
            Cutover::MinRows(r) => {
                self.pool_stats.cutover_rows = r.max(1);
                if total_rows >= r {
                    self.ensure_pool();
                    true
                } else {
                    false
                }
            }
            Cutover::Auto => {
                if self.effective_workers() <= 1 {
                    // One schedulable CPU: worker threads can only add
                    // context-switch tax, never speed. Skip even the pool
                    // spawn so `threads = n` matches serial performance.
                    return false;
                }
                if self.pool.is_none() && total_rows < PRE_POOL_FLOOR_ROWS {
                    return false;
                }
                self.ensure_pool();
                let threshold = self.auto_cutover_rows();
                self.pool_stats.cutover_rows = threshold;
                total_rows >= threshold
            }
        }
    }

    fn ensure_pool(&mut self) {
        if self.pool.is_none() {
            self.pool = Some(WorkerPool::new(self.parallelism));
        }
    }

    /// The adaptive serial-cutover threshold, in seed rows. A parallel
    /// round pays roughly `dispatch_cost × (join tasks + K merge tasks)`
    /// of fixed overhead and can save at most the fraction of the
    /// round's work that extra effective workers absorb; the threshold
    /// is the row volume where the saving overtakes the overhead, with
    /// per-row work estimated online (`row_nanos_ewma`).
    fn auto_cutover_rows(&self) -> u64 {
        let pool = self.pool.as_ref().expect("pool spawned before cutover");
        let k = self.shard_count() as u64;
        let jobs = 2 * pool.workers() as u64 + k;
        let overhead = pool.dispatch_cost_nanos().saturating_mul(jobs);
        let w_eff = self.effective_workers().max(2) as f64;
        let save_frac = 1.0 - 1.0 / w_eff;
        let rows = overhead as f64 / (self.row_nanos_ewma.max(1.0) * save_frac);
        (rows.ceil() as u64).clamp(64, 1 << 20)
    }

    /// Seed scans at or above this many rows split into per-worker
    /// chunks inside a parallel round; below it, one chunk job would
    /// cost more to dispatch than it saves.
    fn split_min_rows(&self) -> usize {
        match self.cutover {
            Cutover::ForceParallel => 2,
            _ => {
                let pool = self.pool.as_ref().expect("pool spawned before split");
                let rows = pool.dispatch_cost_nanos() as f64 / self.row_nanos_ewma.max(1.0);
                (rows.ceil() as usize).clamp(32, 1 << 16)
            }
        }
    }

    /// Executes a round on the pool as a two-phase batch: join tasks
    /// (prewarmed indexes, large seed scans split into per-worker
    /// chunks) route derived tuples into per-shard buffers; then one
    /// merge job per shard dedups its disjoint slice of the tuple space.
    /// Returns the round's [`PoolStats`] delta and the accepted new-row
    /// segments per shard, which the caller commits (it holds `&mut
    /// self`; this method is `&self` so jobs may borrow the evaluator).
    /// A worker panic fails the round with
    /// [`EngineError::WorkerPanicked`]; nothing is committed.
    fn run_round_parallel(
        &self,
        plan_seeds: &[PlanSeed],
        stats: &mut Stats,
    ) -> Result<(PoolStats, Vec<ShardOut>), EngineError> {
        let pool = self.pool.as_ref().expect("pool spawned by decide_parallel");
        let k = self.shard_count();
        let plans: Vec<&CompiledRule> = plan_seeds.iter().map(|ps| self.plan(ps.pref)).collect();
        let build_start = Instant::now();
        self.prewarm_indexes(&plans);
        let mut delta = PoolStats {
            index_build_nanos: build_start.elapsed().as_nanos() as u64,
            ..PoolStats::default()
        };

        let workers = pool.workers();
        let split_min = self.split_min_rows();
        let mut tasks: Vec<Task<'_>> = Vec::new();
        let mut rows_dispatched: u64 = 0;
        for (ps, &plan) in plan_seeds.iter().zip(&plans) {
            rows_dispatched += ps.rows;
            let mut split = false;
            if let Some((si, range)) = ps.seed {
                if range.len() >= split_min {
                    for chunk in range.split(workers) {
                        tasks.push(Task {
                            plan,
                            part: Some((si, chunk)),
                        });
                    }
                    split = true;
                }
            }
            if !split {
                tasks.push(Task { plan, part: None });
            }
        }

        // Shard mailboxes: filled by join tasks (one short lock per
        // non-empty task shard), drained whole by the merge jobs after
        // the phase barrier.
        let shard_bufs: Vec<Mutex<Vec<DerivedBuf>>> =
            (0..k).map(|_| Mutex::new(Vec::new())).collect();
        let ev: &Evaluator<'db> = self;
        let shard_bufs_ref = &shard_bufs;
        let (stat_tx, stat_rx) = channel::<Stats>();
        let (out_tx, out_rx) = channel::<(usize, ShardOut)>();
        let join_jobs: Vec<Job<'_>> = tasks
            .iter()
            .map(|&task| {
                let stat_tx = stat_tx.clone();
                Box::new(move || {
                    #[cfg(feature = "failpoints")]
                    crate::failpoint::hit_or_panic("pool.join");
                    let mut st = Stats::default();
                    let mut buf = ShardedDerivedBuf::new(k);
                    // On a cooperative abort the task's partial shards
                    // are dropped here; the control thread discards the
                    // whole round anyway.
                    if ev.execute_task(task, &mut st, &mut buf, None) {
                        for (s, shard) in buf.shards.into_iter().enumerate() {
                            if !shard.is_empty() {
                                shard_bufs_ref[s]
                                    .lock()
                                    .expect("shard mailbox poisoned")
                                    .push(shard);
                            }
                        }
                    }
                    stat_tx.send(st).expect("round collector gone");
                }) as Job<'_>
            })
            .collect();
        let merge_jobs: Vec<Job<'_>> = (0..k)
            .map(|s| {
                let out_tx = out_tx.clone();
                Box::new(move || {
                    #[cfg(feature = "failpoints")]
                    crate::failpoint::hit_or_panic("pool.merge");
                    let bufs = std::mem::take(
                        &mut *shard_bufs_ref[s].lock().expect("shard mailbox poisoned"),
                    );
                    out_tx
                        .send((s, ev.merge_shard(bufs)))
                        .expect("round collector gone");
                }) as Job<'_>
            })
            .collect();
        let ntasks = (tasks.len() + k) as u64;
        let phases = match pool.run_phases(vec![join_jobs, merge_jobs]) {
            Ok(p) => p,
            Err(p) => {
                // The pool drained the failing phase and dispatched
                // nothing after it; dropping the channels discards every
                // partial derivation, so the IDB is untouched.
                return Err(EngineError::WorkerPanicked {
                    job: if p.phase == 0 {
                        "pool.join".into()
                    } else {
                        "pool.merge".into()
                    },
                    payload: p.panic.payload,
                });
            }
        };
        drop(stat_tx);
        drop(out_tx);
        for st in stat_rx {
            *stats += st;
        }
        let mut outs: Vec<Option<ShardOut>> = (0..k).map(|_| None).collect();
        for (s, out) in out_rx {
            outs[s] = Some(out);
        }

        delta.parallel_rounds = 1;
        delta.tasks = ntasks;
        delta.join_nanos = phases[0].busy_nanos;
        delta.merge_nanos = phases[1].busy_nanos;
        delta.busy_nanos = phases[0].busy_nanos + phases[1].busy_nanos;
        delta.wall_nanos = phases[0].wall_nanos + phases[1].wall_nanos;
        delta.rows_dispatched = rows_dispatched;
        delta.workers = workers;
        delta.shards = k;
        delta.last_round_rows = rows_dispatched;
        delta.last_round_nanos = delta.wall_nanos;
        Ok((delta, outs.into_iter().flatten().collect()))
    }

    /// One merge job: dedups every buffered tuple of one shard against
    /// the relations (read-only prehashed probes) and a private
    /// accumulator per predicate. Shard disjointness (equal rows share a
    /// hash, hence a shard) is what makes this safe without locks.
    fn merge_shard(&self, bufs: Vec<DerivedBuf>) -> ShardOut {
        let mut accs: BTreeMap<Pred, MergeAcc> = BTreeMap::new();
        let mut polled: u64 = 0;
        for buf in &bufs {
            for (pred, row, h) in buf.rows() {
                polled += 1;
                if polled & POLL_MASK == 0 && self.should_abort() {
                    // Mid-merge deadline/cancel: the round is doomed, so
                    // the partial accumulators are as good as discarded —
                    // stop burning the remaining tuples.
                    return ShardOut { preds: Vec::new() };
                }
                let rel = self
                    .idb
                    .get(&pred)
                    .expect("derived tuple for unknown idb predicate");
                if rel.contains_hashed(row, h) {
                    continue;
                }
                accs.entry(pred)
                    .or_insert_with(|| MergeAcc::new(row.len()))
                    .push_if_new(row, h);
            }
        }
        ShardOut {
            preds: accs
                .into_iter()
                .filter(|(_, a)| !a.hashes.is_empty())
                .map(|(p, a)| (p, a.data, a.hashes))
                .collect(),
        }
    }

    /// Folds one round's pool delta into the accumulated counters.
    fn merge_pool_stats(&mut self, d: PoolStats) {
        let ps = &mut self.pool_stats;
        ps.parallel_rounds += d.parallel_rounds;
        ps.serial_rounds += d.serial_rounds;
        ps.tasks += d.tasks;
        ps.busy_nanos += d.busy_nanos;
        ps.wall_nanos += d.wall_nanos;
        ps.join_nanos += d.join_nanos;
        ps.merge_nanos += d.merge_nanos;
        ps.concat_nanos += d.concat_nanos;
        ps.index_build_nanos += d.index_build_nanos;
        ps.rows_dispatched += d.rows_dispatched;
        ps.serial_nanos += d.serial_nanos;
        ps.serial_rows += d.serial_rows;
        ps.cutover_serial_rounds += d.cutover_serial_rounds;
        if d.workers > 0 {
            ps.workers = d.workers;
        }
        if d.shards > 0 {
            ps.shards = d.shards;
        }
        if d.parallel_rounds > 0 {
            ps.last_round_rows = d.last_round_rows;
            ps.last_round_nanos = d.last_round_nanos;
        }
    }

    /// Runs to fixpoint.
    pub fn run(&mut self) -> Result<(), EngineError> {
        while self.step()? {}
        Ok(())
    }

    /// Finalizes, yielding the IDB relations and stats.
    pub fn finish(self) -> EvalResult {
        EvalResult {
            idb: self.idb.into_iter().collect(),
            stats: self.stats,
            route: Route::Direct,
            choice: None,
        }
    }

    /// Eagerly builds every index the given plans will probe, so the
    /// parallel phase only takes shared read locks.
    fn prewarm_indexes(&self, plans: &[&CompiledRule]) {
        for plan in plans {
            for step in &plan.steps {
                match step {
                    Step::Scan(s) if !s.key_cols.is_empty() => {
                        if let Some((rel, _)) = self.resolve(s.pred, s.view) {
                            rel.ensure_index(&s.key_cols);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    fn resolve(&self, pred: Pred, view: View) -> Option<(&Relation, RowRange)> {
        if self.idb_preds.contains(&pred) {
            let rel = self.idb.get(&pred)?;
            let (old_end, total_end) = self.marks[&pred];
            let range = match view {
                View::Full | View::Total => RowRange {
                    start: 0,
                    end: total_end,
                },
                View::Old => RowRange {
                    start: 0,
                    end: old_end,
                },
                View::Delta => RowRange {
                    start: old_end,
                    end: total_end,
                },
            };
            Some((rel, range))
        } else {
            let rel = self.db.get(pred)?;
            let all = rel.all_rows();
            if !self.incremental {
                return Some((rel, all));
            }
            // Incremental mode: EDB old/delta views split at the
            // transaction watermark. Predicates the tx never touched
            // default to an empty delta.
            let mark = self.edb_marks.get(&pred).copied().unwrap_or(all.end);
            let range = match view {
                View::Full | View::Total => all,
                View::Old => RowRange {
                    start: 0,
                    end: mark,
                },
                View::Delta => RowRange {
                    start: mark,
                    end: all.end,
                },
            };
            Some((rel, range))
        }
    }

    /// Runs one task to completion. Returns `false` when a cooperative
    /// governance check aborted the task mid-scan (its partial output
    /// must be discarded).
    fn execute_task(
        &self,
        task: Task<'_>,
        stats: &mut Stats,
        out: &mut ShardedDerivedBuf,
        memo: Option<&mut Vec<DepthMemo>>,
    ) -> bool {
        stats.rule_firings += 1;
        TASK_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let ok = match &task.plan.kernel {
                Some(k) if self.kernels => {
                    stats.kernel_firings += 1;
                    run_kernel(self, task.plan, k, task.part, scratch, stats, out, memo)
                }
                _ => {
                    stats.interp_firings += 1;
                    run_machine(self, task.plan, task.part, scratch, stats, out)
                }
            };
            stats.scratch_hw_bytes = stats.scratch_hw_bytes.max(scratch.resident_bytes());
            ok
        })
    }

    /// A current [`ProbeHandle`] on `cols` of `rel`, building the index
    /// first if needed. During parallel phases [`prewarm_indexes`]
    /// (crate::eval::Evaluator::prewarm_indexes) has already built every
    /// index, so this is one uncontended read-lock acquisition.
    fn handle_for(&self, rel: &Relation, cols: &[usize]) -> ProbeHandle {
        match rel.probe_handle(cols) {
            Some(h) => h,
            None => {
                rel.ensure_index(cols);
                rel.probe_handle(cols)
                    .expect("index is current immediately after ensure_index")
            }
        }
    }
}

/// Scheduler-visible CPUs, sampled once per process: on Linux,
/// `available_parallelism` re-reads cgroup files on every call (~10µs),
/// which is too slow for a per-round cutover decision.
fn machine_cpus() -> usize {
    static CPUS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CPUS.get_or_init(|| std::thread::available_parallelism().map_or(1, usize::from))
}

/// Serial insertion path: drains a (single-shard or multi-shard) buffer
/// straight into the relations, reusing the derivation-time hashes.
fn drain_serial(
    buf: &ShardedDerivedBuf,
    idb: &mut FxHashMap<Pred, Relation>,
    stats: &mut Stats,
) -> bool {
    // How far ahead of the insert cursor to prefetch membership slots:
    // far enough to cover a memory round-trip, near enough that the
    // lines survive in L1 (a grow() between issue and use only wastes
    // the hint).
    const PREFETCH: usize = 8;
    // Pre-size the dedup tables: per target predicate, scale the
    // round's derived-row count by the relation's learned unique
    // fraction ([`Relation::reserve_for_derived`]) and reserve once up
    // front, so steady-state drains never grow mid-insert. `tallies`
    // doubles as the per-predicate derived/inserted count pair feeding
    // the post-drain EWMA update — a round touches a handful of
    // predicates, so a linear scan beats a map.
    let mut tallies: Vec<(Pred, usize, usize)> = Vec::new();
    for shard in &buf.shards {
        let nrows = shard.hashes.len();
        for (ri, run) in shard.runs.iter().enumerate() {
            let row_end = shard
                .runs
                .get(ri + 1)
                .map_or(nrows, |r| r.row_start as usize);
            let cnt = row_end - run.row_start as usize;
            match tallies.iter_mut().find(|(p, ..)| *p == run.pred) {
                Some(t) => t.1 += cnt,
                None => tallies.push((run.pred, cnt, 0)),
            }
        }
    }
    let mut regrow_delta = 0u64;
    for &(p, derived, _) in &tallies {
        let rel = idb
            .get_mut(&p)
            .expect("derived tuple for unknown idb predicate");
        regrow_delta = regrow_delta.wrapping_sub(rel.regrows());
        rel.reserve_for_derived(derived);
    }
    let mut any_new = false;
    for shard in &buf.shards {
        // The buffer is already run-length encoded by predicate:
        // resolve the relation once per run, then drive the run with
        // hash prefetches ahead of the dedup probes.
        let nrows = shard.hashes.len();
        for (ri, run) in shard.runs.iter().enumerate() {
            let row_end = shard
                .runs
                .get(ri + 1)
                .map_or(nrows, |r| r.row_start as usize);
            let (base, arity) = (run.data_start as usize, run.arity as usize);
            let rel = idb
                .get_mut(&run.pred)
                .expect("derived tuple for unknown idb predicate");
            let mut ins = 0usize;
            for i in run.row_start as usize..row_end {
                if i + PREFETCH < row_end {
                    rel.prefetch_hash(shard.hashes[i + PREFETCH]);
                }
                let s = base + (i - run.row_start as usize) * arity;
                if rel.insert_hashed(&shard.data[s..s + arity], shard.hashes[i]) {
                    ins += 1;
                }
            }
            stats.inserted += ins as u64;
            any_new |= ins > 0;
            if let Some(t) = tallies.iter_mut().find(|(p, ..)| *p == run.pred) {
                t.2 += ins;
            }
        }
    }
    // Feed the observed duplicate rate back into each relation's EWMA
    // and report any mid-drain regrows (the stall the reservation
    // exists to eliminate; see [`Stats::dedup_regrows`]).
    for &(p, derived, inserted) in &tallies {
        let rel = idb
            .get_mut(&p)
            .expect("derived tuple for unknown idb predicate");
        regrow_delta = regrow_delta.wrapping_add(rel.regrows());
        rel.note_drain(derived, inserted);
    }
    stats.dedup_regrows += regrow_delta;
    any_new
}

fn read(slots: &[Value], s: Source) -> Value {
    match s {
        Source::Const(c) => c,
        Source::Slot(i) => slots[i],
    }
}

/// Reusable per-worker scratch for task execution: the slot frame, the
/// scan-cursor stack, the probe-key arena and the negation key. Held in
/// a thread-local so the control thread and every pool worker reuse one
/// allocation set across all tasks and rounds — steady-state execution
/// does zero heap allocation per derived row. [`Stats::scratch_hw_bytes`]
/// reports the high-water resident size as the observable witness:
/// it plateaus after warm-up no matter how many rows derive.
#[derive(Default)]
struct TaskScratch {
    /// Variable slots of the plan being executed.
    slots: Vec<Value>,
    /// One frame per active `Scan` step.
    frames: Vec<Frame>,
    /// Flat arena of probe keys. Frames address it by offset (not by
    /// pointer), so growth never invalidates outer frames' keys.
    key_buf: Vec<Value>,
    /// Staging buffer for `Step::Neg` membership keys.
    neg_key: Vec<Value>,
    /// The batch kernel's gathered seed chunk: packed `depth-0 key hash
    /// high half | seed row id` words (see [`pack_seed`]), sorted so
    /// rows sharing a probe key form runs. Capacity is bounded by
    /// [`KERNEL_CHUNK`], never by data size.
    chunk: Vec<u64>,
    /// Ring of upcoming sort-group starts (indexes into
    /// [`TaskScratch::chunk`]): the boundary scan runs a fixed number of
    /// packed runs ahead of the group walk, prefetching each run's
    /// dictionary (or memo) slot as it is resolved. Fixed-size ring, not
    /// chunk-sized.
    group_starts: Vec<u32>,
    /// Full depth-0 key hash of each ring entry's representative.
    group_hashes: Vec<u64>,
    /// Resolved representative keys of the ring entries (ring slot ×
    /// depth-0 key width), so the walk never re-gathers a run head's key.
    group_keys: Vec<Value>,
}

impl TaskScratch {
    /// Resident heap footprint of the scratch buffers, in bytes.
    fn resident_bytes(&self) -> u64 {
        (self.slots.capacity() * std::mem::size_of::<Value>()
            + self.frames.capacity() * std::mem::size_of::<Frame>()
            + self.key_buf.capacity() * std::mem::size_of::<Value>()
            + self.neg_key.capacity() * std::mem::size_of::<Value>()
            + self.chunk.capacity() * std::mem::size_of::<u64>()
            + self.group_starts.capacity() * std::mem::size_of::<u32>()
            + self.group_hashes.capacity() * std::mem::size_of::<u64>()
            + self.group_keys.capacity() * std::mem::size_of::<Value>()) as u64
    }
}

thread_local! {
    static TASK_SCRATCH: std::cell::RefCell<TaskScratch> =
        std::cell::RefCell::new(TaskScratch::default());
}

/// Iteration state of one active `Scan` step in the step machine.
struct Frame {
    /// Index of the scan step in the plan.
    step: u32,
    /// Offset of this frame's probe key in [`TaskScratch::key_buf`]
    /// (keyless scans own zero key slots).
    key_start: u32,
    cursor: Cursor,
}

/// Where a frame's next candidate row comes from.
enum Cursor {
    /// Full scan over a row range.
    Range { next: u32, end: u32 },
    /// Borrowed index bucket, stored as raw slice parts. Sound because
    /// relations and their indexes are frozen while a round's tasks run
    /// (inserts commit only between rounds); see [`ProbeHandle`].
    Bucket { ptr: *const u32, len: u32, pos: u32 },
}

/// A scan step's relation, visible row range and (for keyed scans)
/// probe handle, resolved once per task instead of once per binding.
struct ScanRel<'a> {
    rel: &'a Relation,
    range: RowRange,
    handle: Option<ProbeHandle>,
}

/// Resolves every `Scan` step of `plan` once: relation, visible range
/// (with the task's data-parallel partition applied), and a probe handle
/// for keyed scans. Returns `None` when some scan's relation is missing
/// or its range is empty — the conjunction can produce no rows and the
/// whole task is a no-op.
fn resolve_scans<'a>(
    ev: &'a Evaluator<'_>,
    steps: &[Step],
    part: Option<(usize, RowRange)>,
) -> Option<Vec<Option<ScanRel<'a>>>> {
    let mut srels: Vec<Option<ScanRel<'a>>> = Vec::with_capacity(steps.len());
    for (i, step) in steps.iter().enumerate() {
        let Step::Scan(s) = step else {
            srels.push(None);
            continue;
        };
        let (rel, mut range) = ev.resolve(s.pred, s.view)?;
        if let Some((pi, pr)) = part {
            if pi == i {
                range = range.intersect(pr);
            }
        }
        if range.is_empty() {
            return None;
        }
        let handle = (!s.key_cols.is_empty()).then(|| ev.handle_for(rel, &s.key_cols));
        srels.push(Some(ScanRel { rel, range, handle }));
    }
    Some(srels)
}

/// The iterative step machine: executes a compiled plan with an explicit
/// cursor stack (one [`Frame`] per active `Scan` step) instead of the
/// former recursive dispatcher. Keyed scans iterate borrowed index
/// buckets with lazy range/tombstone/key filtering; all mutable state
/// lives in the caller's reusable [`TaskScratch`]. Returns `false` when
/// a cooperative governance check tripped mid-scan; the task's partial
/// output is discarded at the round boundary.
fn run_machine(
    ev: &Evaluator<'_>,
    plan: &CompiledRule,
    part: Option<(usize, RowRange)>,
    scratch: &mut TaskScratch,
    stats: &mut Stats,
    out: &mut ShardedDerivedBuf,
) -> bool {
    let steps = &plan.steps;
    let Some(srels) = resolve_scans(ev, steps, part) else {
        return true;
    };
    let TaskScratch {
        slots,
        frames,
        key_buf,
        neg_key,
        ..
    } = scratch;
    slots.clear();
    slots.resize(plan.nslots, Value::Int(0));
    frames.clear();
    key_buf.clear();

    let mut i = 0usize; // next step to execute
    'machine: loop {
        // Forward: run straight-line steps until a scan opens a frame,
        // a step fails, or the plan ends (emit one head tuple). Every
        // exit falls through to the backtrack loop below.
        loop {
            let Some(step) = steps.get(i) else {
                stats.derived += 1;
                out.push(plan.head_pred, plan.head.iter().map(|&s| read(slots, s)));
                break;
            };
            match step {
                Step::Compute(cs) => {
                    stats.cmp_evals += 1;
                    let vals = cs.args.map(|a| read(slots, a));
                    let ok = match cs.bind {
                        None => cs.op.check(vals[0], vals[1], vals[2]),
                        Some((pos, slot)) => {
                            let mut opt = vals.map(Some);
                            opt[pos] = None;
                            match cs.op.solve(opt) {
                                Some(v) => {
                                    slots[slot] = v;
                                    true
                                }
                                None => false,
                            }
                        }
                    };
                    if !ok {
                        break;
                    }
                    i += 1;
                }
                Step::Neg(n) => {
                    stats.probes += 1;
                    let exists = match ev.resolve(n.pred, n.view) {
                        None => false,
                        Some((rel, range)) => {
                            !range.is_empty() && {
                                neg_key.clear();
                                neg_key.extend(n.key.iter().map(|&v| read(slots, v)));
                                rel.contains_in_range(neg_key, hash_slice(neg_key), range)
                            }
                        }
                    };
                    if exists {
                        break;
                    }
                    i += 1;
                }
                Step::Filter(f) => {
                    stats.cmp_evals += 1;
                    if !f.op.eval(&read(slots, f.lhs), &read(slots, f.rhs)) {
                        break;
                    }
                    i += 1;
                }
                Step::Assign(a) => {
                    slots[a.slot] = read(slots, a.from);
                    i += 1;
                }
                Step::Scan(s) => {
                    let sr = srels[i].as_ref().expect("scan resolved at task start");
                    let key_start = key_buf.len() as u32;
                    let cursor = if s.key_cols.is_empty() {
                        Cursor::Range {
                            next: sr.range.start,
                            end: sr.range.end.min(sr.rel.physical_rows() as u32),
                        }
                    } else {
                        stats.probes += 1;
                        key_buf.extend(s.key_vals.iter().map(|&v| read(slots, v)));
                        let key = &key_buf[key_start as usize..];
                        let handle = sr.handle.as_ref().expect("keyed scan has a handle");
                        debug_assert_eq!(handle.generation(), sr.rel.physical_rows());
                        // SAFETY: relations and indexes are frozen while
                        // a round's tasks run (see `ProbeHandle` docs).
                        match unsafe { handle.encode(hash_slice(key), key) } {
                            Some(code) => {
                                // SAFETY: as above; the group slice stays
                                // valid for the round.
                                let group = unsafe { handle.group(code) };
                                Cursor::Bucket {
                                    ptr: group.as_ptr(),
                                    len: group.len() as u32,
                                    pos: 0,
                                }
                            }
                            None => Cursor::Bucket {
                                ptr: std::ptr::null(),
                                len: 0,
                                pos: 0,
                            },
                        }
                    };
                    frames.push(Frame {
                        step: i as u32,
                        key_start,
                        cursor,
                    });
                    break;
                }
            }
        }
        // Backtrack: advance the innermost frame to its next matching
        // row and resume forward from the step after it; pop exhausted
        // frames; the task is done when the stack empties.
        loop {
            let Some(f) = frames.last_mut() else {
                return true;
            };
            let Step::Scan(s) = &steps[f.step as usize] else {
                unreachable!("frames only stack on scan steps")
            };
            let sr = srels[f.step as usize]
                .as_ref()
                .expect("scan resolved at task start");
            let next = loop {
                match &mut f.cursor {
                    Cursor::Range { next, end } => {
                        if *next >= *end {
                            break None;
                        }
                        let r = *next;
                        *next += 1;
                        if sr.rel.is_dead(r) {
                            continue;
                        }
                        break Some(r);
                    }
                    Cursor::Bucket { ptr, len, pos } => {
                        if *pos >= *len {
                            break None;
                        }
                        // SAFETY: group storage is frozen for the round.
                        let r = unsafe { *ptr.add(*pos as usize) };
                        *pos += 1;
                        // Every row in a dictionary group carries exactly
                        // the probed key (codes are minted per distinct
                        // key tuple), so visibility is the only residual
                        // filter — no per-row key comparison.
                        if !sr.rel.row_visible(r, sr.range) {
                            continue;
                        }
                        stats.probe_hits += 1;
                        break Some(r);
                    }
                }
            };
            let Some(r) = next else {
                key_buf.truncate(f.key_start as usize);
                frames.pop();
                continue;
            };
            stats.rows_scanned += 1;
            // Cooperative governance poll: every POLL_MASK+1 rows.
            if stats.rows_scanned & POLL_MASK == 0 && ev.should_abort() {
                return false;
            }
            let row = sr.rel.row(r);
            if row.len() != s.args.len() {
                continue;
            }
            let mut ok = true;
            for (pat, &v) in s.args.iter().zip(row) {
                match *pat {
                    ArgPat::Const(c) => {
                        if c != v {
                            ok = false;
                            break;
                        }
                    }
                    ArgPat::Bound(sl) => {
                        if slots[sl] != v {
                            ok = false;
                            break;
                        }
                    }
                    ArgPat::Bind(sl) => slots[sl] = v,
                }
            }
            if ok {
                i = f.step as usize + 1;
                continue 'machine;
            }
        }
    }
}

/// Seed rows per batch-kernel chunk. The gather/sort/group pipeline
/// processes the seed scan this many rows at a time, so per-worker
/// scratch stays a small constant while dictionary lookups amortize
/// across every gathered row that shares a probe key.
const KERNEL_CHUNK: usize = 1024;

/// Packs the high half of a depth-0 key hash with a seed row id into one
/// sortable word. Sorting the packed words groups equal keys adjacently
/// at half the memory traffic of `(hash, id)` pairs — the group walk
/// re-verifies keys by value, so 32 hash bits are plenty (a high-half
/// collision merely splits a run, and per-member count replay makes a
/// split group equivalent) — with the row id as a deterministic
/// tiebreak.
#[inline]
fn pack_seed(h: u64, r: u32) -> u64 {
    (h & 0xFFFF_FFFF_0000_0000) | r as u64
}

/// Immutable per-task context of a batch-kernel execution: the kernel,
/// the resolved probe relations, the fixed per-depth key offsets into
/// the scratch arena, and the invariant/dependent depth split.
struct KernelCtx<'a> {
    plan: &'a CompiledRule,
    k: &'a BatchKernel,
    prels: [Option<(&'a Relation, RowRange, ProbeHandle)>; MAX_KERNEL_PROBES],
    key_off: [usize; MAX_KERNEL_PROBES + 1],
    /// First member-dependent probe depth. Depths `[0, split)` read only
    /// constants, seed columns that are part of the depth-0 (grouping)
    /// key — equal across a group by construction — or rows matched at
    /// earlier invariant depths, so the group phase enumerates them once
    /// per distinct key and replays their logical work counts per
    /// member. Depths `[split, np)` run per member, tuple-style.
    split: usize,
    np: usize,
}

impl KernelCtx<'_> {
    /// Resolves a kernel source against a seed row and the per-depth
    /// matched rows.
    #[inline]
    fn src_val(
        &self,
        src: KernelSrc,
        seed_row: &[Value],
        rowids: &[u32; MAX_KERNEL_PROBES],
    ) -> Value {
        match src {
            KernelSrc::Const(c) => c,
            KernelSrc::Seed(c) => seed_row[c],
            KernelSrc::Probe(d, c) => {
                let (rel, _, _) = self.prels[d].as_ref().expect("probe depth resolved");
                rel.row(rowids[d])[c]
            }
            // Recompute on demand: computes read only constants, seed
            // columns and earlier computes, so the value is a pure
            // function of the seed row. The gather phase already
            // evaluated (and counted) every compute for this row and
            // dropped it on failure, so solving again here is silent
            // and infallible.
            KernelSrc::Computed(ci) => self
                .compute_val(ci, seed_row)
                .expect("compute verified at gather"),
        }
    }

    /// Evaluates the `ci`-th hoisted binding builtin against a seed row;
    /// `None` means the builtin has no solution there (ill-typed
    /// operand, …) and the gather must drop the row before anything
    /// reads `KernelSrc::Computed(ci)`.
    #[inline]
    fn compute_val(&self, ci: usize, seed_row: &[Value]) -> Option<Value> {
        let c = &self.k.computes[ci];
        let mut vals = [None; 3];
        for (j, (v, &s)) in vals.iter_mut().zip(&c.args).enumerate() {
            if j != c.bind {
                // Compute args never reference probe rows (planner
                // invariant), so a zeroed rowid array is never read.
                *v = Some(self.src_val(s, seed_row, &[0; MAX_KERNEL_PROBES]));
            }
        }
        c.op.solve(vals)
    }

    /// Evaluates one comparison / pure-builtin guard.
    #[inline]
    fn guard_ok(
        &self,
        g: &KernelGuard,
        seed_row: &[Value],
        rowids: &[u32; MAX_KERNEL_PROBES],
    ) -> bool {
        match *g {
            KernelGuard::Cmp(l, op, r) => op.eval(
                &self.src_val(l, seed_row, rowids),
                &self.src_val(r, seed_row, rowids),
            ),
            KernelGuard::Builtin(op, args) => op.check(
                self.src_val(args[0], seed_row, rowids),
                self.src_val(args[1], seed_row, rowids),
                self.src_val(args[2], seed_row, rowids),
            ),
        }
    }

    /// The per-member tail of one group-phase prefix match: for each
    /// member seed row, either emit the head directly (`split == np`,
    /// the match is already complete) or drive the dependent probe
    /// suffix `[split, np)` tuple-at-a-time. A dependent depth 0 reuses
    /// the group's pre-fetched dictionary group `depth0` instead of
    /// re-encoding per member. Returns `false` on a governance abort.
    #[allow(clippy::too_many_arguments)]
    fn member_tail(
        &self,
        ev: &Evaluator<'_>,
        seed_rel: &Relation,
        members: &[u64],
        depth0: (*const u32, u32),
        key_buf: &mut [Value],
        cursors: &mut [(*const u32, u32, u32); MAX_KERNEL_PROBES],
        rowids: &mut [u32; MAX_KERNEL_PROBES],
        ticks: &mut u64,
        stats: &mut Stats,
        out: &mut ShardedDerivedBuf,
    ) -> bool {
        let (k, np, split) = (self.k, self.np, self.split);
        // Member row ids are hash-ordered, i.e. scattered through the
        // seed store; stay a few rows ahead of the walk.
        const MEMBER_PREFETCH: usize = 4;
        if split == np {
            // Fully invariant chain: the match is already complete and
            // only the head still reads member columns. Resolve the
            // invariant head entries once into a stack template; per
            // member, fill the seed-dependent entries, hash, and copy —
            // the emission loop touches no probe state.
            const HEAD_TMPL: usize = 8;
            let hl = k.head.len();
            if hl == 0 || hl > HEAD_TMPL {
                // Degenerate widths: per-member full resolve.
                for (mi, &e) in members.iter().enumerate() {
                    if let Some(&ne) = members.get(mi + MEMBER_PREFETCH) {
                        seed_rel.prefetch_row(ne as u32);
                    }
                    let seed_row = seed_rel.row(e as u32);
                    *ticks += 1;
                    if *ticks & POLL_MASK == 0 && ev.should_abort() {
                        return false;
                    }
                    stats.derived += 1;
                    out.push(
                        self.plan.head_pred,
                        k.head.iter().map(|&s| self.src_val(s, seed_row, rowids)),
                    );
                }
                return true;
            }
            let mut tmpl = [Value::Int(0); HEAD_TMPL];
            let mut dyns = [(0usize, k.head[0]); HEAD_TMPL];
            let mut nd = 0usize;
            for (j, &s) in k.head.iter().enumerate() {
                match s {
                    KernelSrc::Seed(_) | KernelSrc::Computed(_) => {
                        dyns[nd] = (j, s);
                        nd += 1;
                    }
                    // Constants and probe rows are fixed for the whole
                    // match; the empty seed slice is never read.
                    _ => tmpl[j] = self.src_val(s, &[], rowids),
                }
            }
            for (mi, &e) in members.iter().enumerate() {
                if let Some(&ne) = members.get(mi + MEMBER_PREFETCH) {
                    seed_rel.prefetch_row(ne as u32);
                }
                let seed_row = seed_rel.row(e as u32);
                *ticks += 1;
                if *ticks & POLL_MASK == 0 && ev.should_abort() {
                    return false;
                }
                stats.derived += 1;
                for &(j, s) in &dyns[..nd] {
                    tmpl[j] = self.src_val(s, seed_row, rowids);
                }
                out.push_row(self.plan.head_pred, &tmpl[..hl]);
            }
            return true;
        }
        for (mi, &e) in members.iter().enumerate() {
            if let Some(&ne) = members.get(mi + MEMBER_PREFETCH) {
                seed_rel.prefetch_row(ne as u32);
            }
            let seed_row = seed_rel.row(e as u32);
            let mut d = split;
            let mut entering = true;
            loop {
                let p = &k.probes[d];
                let (rel, range, handle) = self.prels[d].as_ref().expect("probe depth resolved");
                if entering {
                    stats.probes += 1;
                    if d == 0 {
                        // Shared dictionary group: encoded once per
                        // group; member-dependent checks and guards
                        // still run below.
                        cursors[0] = (depth0.0, depth0.1, 0);
                    } else {
                        let (ks, ke) = (self.key_off[d], self.key_off[d + 1]);
                        for (j, &src) in p.key.iter().enumerate() {
                            key_buf[ks + j] = self.src_val(src, seed_row, rowids);
                        }
                        let key = &key_buf[ks..ke];
                        stats.dict_probes += 1;
                        // SAFETY: relations and indexes are frozen while
                        // a round's tasks run (see `ProbeHandle` docs).
                        cursors[d] = match unsafe { handle.encode(hash_slice(key), key) } {
                            Some(code) => {
                                let g = unsafe { handle.group(code) };
                                (g.as_ptr(), g.len() as u32, 0)
                            }
                            None => (std::ptr::null(), 0, 0),
                        };
                    }
                    entering = false;
                }
                // Advance depth d to its next matching row.
                let mut matched = false;
                {
                    let (ptr, len, pos) = &mut cursors[d];
                    while *pos < *len {
                        // SAFETY: group storage is frozen for the round.
                        let rid = unsafe { *ptr.add(*pos as usize) };
                        *pos += 1;
                        // Dictionary groups hold exactly the probed key,
                        // so visibility is the only residual filter.
                        if !rel.row_visible(rid, *range) {
                            continue;
                        }
                        stats.probe_hits += 1;
                        stats.rows_scanned += 1;
                        *ticks += 1;
                        if *ticks & POLL_MASK == 0 && ev.should_abort() {
                            return false;
                        }
                        let row = rel.row(rid);
                        if row.len() != p.arity {
                            continue;
                        }
                        rowids[d] = rid;
                        let mut ok = true;
                        for &(c, src) in &p.checks {
                            if row[c] != self.src_val(src, seed_row, rowids) {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            for g in &p.guards {
                                stats.cmp_evals += 1;
                                if !self.guard_ok(g, seed_row, rowids) {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                        if !ok {
                            continue;
                        }
                        matched = true;
                        break;
                    }
                }
                if matched {
                    if p.existential {
                        // Nothing downstream reads this row: exhaust the
                        // cursor so the next advance backtracks at once.
                        cursors[d].2 = cursors[d].1;
                    }
                    if d + 1 < np {
                        d += 1;
                        entering = true;
                        continue;
                    }
                    stats.derived += 1;
                    out.push(
                        self.plan.head_pred,
                        k.head.iter().map(|&s| self.src_val(s, seed_row, rowids)),
                    );
                    // Stay at the deepest depth and advance for more.
                } else if d == split {
                    break;
                } else {
                    d -= 1;
                }
            }
        }
        true
    }
}

/// Executes a [`BatchKernel`]: the seed scan is gathered into
/// [`KERNEL_CHUNK`]-row chunks of packed key-hash/row-id words and
/// sorted so rows sharing a probe key form groups; each group then pays
/// its dictionary lookups once. The invariant probe prefix (see
/// [`KernelCtx::split`]) is enumerated once per group — including the
/// existential short-circuit, which becomes a group-level first-hit —
/// with its logical work counters replayed per member, so
/// `derived`/`rows_scanned`/`probe_hits` stay partition-invariant and
/// equal to per-tuple execution. The dependent suffix runs per member
/// over pre-fetched dictionary groups. Governance polls ride a local
/// per-row tick (bulk counter updates would break the global
/// `rows_scanned` cadence). Returns `false` when a poll aborted the
/// task; its partial output is discarded at the round boundary.
#[allow(clippy::too_many_arguments)]
fn run_kernel(
    ev: &Evaluator<'_>,
    plan: &CompiledRule,
    k: &BatchKernel,
    part: Option<(usize, RowRange)>,
    scratch: &mut TaskScratch,
    stats: &mut Stats,
    out: &mut ShardedDerivedBuf,
    memo: Option<&mut Vec<DepthMemo>>,
) -> bool {
    let Some((seed_rel, mut seed_range)) = ev.resolve(k.seed_pred, k.seed_view) else {
        return true;
    };
    if let Some((_, pr)) = part {
        // The scheduler partitions the plan's first Scan step, which is
        // by construction the kernel's seed scan (assignments and guards
        // may precede it in the step sequence).
        seed_range = seed_range.intersect(pr);
    }
    seed_range.end = seed_range.end.min(seed_rel.physical_rows() as u32);
    if seed_range.is_empty() {
        return true;
    }
    let np = k.probes.len();
    debug_assert!(np <= MAX_KERNEL_PROBES);
    let mut prels: [Option<(&Relation, RowRange, ProbeHandle)>; MAX_KERNEL_PROBES] =
        [None; MAX_KERNEL_PROBES];
    for (d, p) in k.probes.iter().enumerate() {
        let Some((rel, range)) = ev.resolve(p.pred, p.view) else {
            return true;
        };
        if range.is_empty() {
            return true;
        }
        let handle = ev.handle_for(rel, &p.key_cols);
        debug_assert_eq!(handle.generation(), rel.physical_rows());
        prels[d] = Some((rel, range, handle));
    }
    // Arm the per-depth memos: stamp generations, clear stale maps, and
    // keep only EDB depths (IDB dictionaries change every round, so
    // filling a memo for them is pure overhead).
    let mut depth_memos: [Option<&mut DepthMemo>; MAX_KERNEL_PROBES] =
        std::array::from_fn(|_| None);
    if let Some(memos) = memo {
        debug_assert_eq!(memos.len(), np);
        for (d, m) in memos.iter_mut().enumerate().take(np) {
            if !m.edb {
                continue;
            }
            let (rel, _, _) = prels[d].as_ref().expect("probe depth resolved");
            let gen = rel.generation();
            if m.gen != gen {
                m.map.clear();
                m.gen = gen;
            }
            depth_memos[d] = Some(m);
        }
    }
    // A constant-keyed seed enumerates one dictionary group instead of
    // the row range; an absent key derives nothing.
    let seed_handle =
        (!k.seed_key_cols.is_empty()).then(|| ev.handle_for(seed_rel, &k.seed_key_cols));
    let seed_group: Option<&[u32]> = match &seed_handle {
        None => None,
        Some(h) => {
            debug_assert_eq!(h.generation(), seed_rel.physical_rows());
            stats.probes += 1;
            stats.dict_probes += 1;
            // SAFETY: relations and indexes are frozen while a round's
            // tasks run (see `ProbeHandle` docs).
            match unsafe { h.encode(hash_slice(&k.seed_key), &k.seed_key) } {
                Some(code) => Some(unsafe { h.group(code) }),
                None => return true,
            }
        }
    };
    // Fixed per-depth key offsets into the reused arena.
    let key_off = k.key_offsets();
    // Invariant/dependent split (see [`KernelCtx::split`]): keys may
    // read rows of strictly earlier depths; checks and guards at depth
    // `d` may also read the row being matched at `d` itself. A source is
    // invariant when every member of a depth-0 key group yields the
    // same value: constants always, seed columns exactly when they are
    // part of the grouping key (group formation verifies key equality
    // by value), and computes when they are themselves a grouping-key
    // source or read only invariant inputs. `comp_inv` is a bitmask
    // over compute indices (the planner caps them at
    // [`MAX_KERNEL_COMPUTES`]), filled in order since computes only
    // read earlier computes.
    let in_group_key = |s: KernelSrc| k.probes.first().is_some_and(|p| p.key.contains(&s));
    let mut comp_inv = 0u64;
    for (ci, c) in k.computes.iter().enumerate() {
        let inv = in_group_key(KernelSrc::Computed(ci))
            || c.args.iter().enumerate().all(|(j, &s)| {
                j == c.bind
                    || match s {
                        KernelSrc::Const(_) => true,
                        KernelSrc::Seed(_) => in_group_key(s),
                        KernelSrc::Computed(cj) => comp_inv & (1 << cj) != 0,
                        KernelSrc::Probe(..) => false,
                    }
            });
        if inv {
            comp_inv |= 1 << ci;
        }
    }
    let inv_src = |s: KernelSrc, below: usize| match s {
        KernelSrc::Const(_) => true,
        KernelSrc::Seed(_) => in_group_key(s),
        KernelSrc::Probe(dd, _) => dd < below,
        KernelSrc::Computed(ci) => comp_inv & (1 << ci) != 0,
    };
    let mut split = 0usize;
    while split < np {
        let p = &k.probes[split];
        let inv = p.key.iter().all(|&s| inv_src(s, split))
            && p.checks.iter().all(|&(_, s)| inv_src(s, split + 1))
            && p.guards.iter().all(|g| match *g {
                KernelGuard::Cmp(l, _, r) => inv_src(l, split + 1) && inv_src(r, split + 1),
                KernelGuard::Builtin(_, args) => args.iter().all(|&s| inv_src(s, split + 1)),
            });
        if !inv {
            break;
        }
        split += 1;
    }
    let ctx = KernelCtx {
        plan,
        k,
        prels,
        key_off,
        split,
        np,
    };
    let TaskScratch {
        key_buf,
        chunk,
        group_starts,
        group_hashes,
        group_keys,
        ..
    } = scratch;
    key_buf.clear();
    key_buf.resize(key_off[np], Value::Int(0));
    let mut cursors = [(std::ptr::null::<u32>(), 0u32, 0u32); MAX_KERNEL_PROBES];
    let mut rowids = [0u32; MAX_KERNEL_PROBES];
    let mut ticks = 0u64;
    let w0 = if np > 0 { k.probes[0].key.len() } else { 0 };

    let mut range_next = seed_range.start;
    let mut group_pos = 0usize;
    'chunks: loop {
        // Gather: fill one chunk with visible seed rows that pass the
        // seed checks and guards, hashing each row's depth-0 probe key.
        chunk.clear();
        while chunk.len() < KERNEL_CHUNK {
            let r = match seed_group {
                None => {
                    if range_next >= seed_range.end {
                        break;
                    }
                    let r = range_next;
                    range_next += 1;
                    if seed_rel.is_dead(r) {
                        continue;
                    }
                    r
                }
                Some(g) => {
                    let Some(&r) = g.get(group_pos) else { break };
                    group_pos += 1;
                    if !seed_rel.row_visible(r, seed_range) {
                        continue;
                    }
                    r
                }
            };
            stats.rows_scanned += 1;
            ticks += 1;
            if ticks & POLL_MASK == 0 && ev.should_abort() {
                return false;
            }
            let seed_row = seed_rel.row(r);
            if seed_row.len() != k.seed_arity {
                continue;
            }
            // Hoisted binding builtins: evaluate-or-drop, first — once a
            // row survives, every later `Computed` read re-solves
            // silently and infallibly.
            let mut ok = true;
            for ci in 0..k.computes.len() {
                stats.cmp_evals += 1;
                if ctx.compute_val(ci, seed_row).is_none() {
                    ok = false;
                    break;
                }
            }
            if ok {
                for &(c, src) in &k.seed_checks {
                    if seed_row[c] != ctx.src_val(src, seed_row, &rowids) {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                for g in &k.seed_guards {
                    stats.cmp_evals += 1;
                    if !ctx.guard_ok(g, seed_row, &rowids) {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let h = if np > 0 {
                for (j, &src) in k.probes[0].key.iter().enumerate() {
                    key_buf[j] = ctx.src_val(src, seed_row, &rowids);
                }
                hash_slice(&key_buf[..w0])
            } else {
                0
            };
            chunk.push(pack_seed(h, r));
        }
        if chunk.is_empty() {
            break 'chunks;
        }
        if np == 0 {
            // Pure seed scan: the gather is the whole pipeline; emit.
            // A head that copies the seed row verbatim (the ubiquitous
            // base-rule shape `p(X,Y) :- e(X,Y).`) re-emits stored rows,
            // so their derivation-time hashes are reusable as-is.
            let identity = k.head.len() == k.seed_arity
                && k.head
                    .iter()
                    .enumerate()
                    .all(|(j, &s)| s == KernelSrc::Seed(j));
            for &e in chunk.iter() {
                let r = e as u32;
                let seed_row = seed_rel.row(r);
                stats.derived += 1;
                if identity {
                    out.push_prehashed(plan.head_pred, seed_row, seed_rel.row_hash_at(r));
                } else {
                    out.push(
                        plan.head_pred,
                        k.head.iter().map(|&s| ctx.src_val(s, seed_row, &rowids)),
                    );
                }
            }
            continue 'chunks;
        }
        // Sort-group: rows sharing the depth-0 key become one run (hash
        // order with row-id tiebreak keeps runs deterministic).
        chunk.sort_unstable();
        let (rel0, _, h0) = ctx.prels[0].as_ref().expect("probe depth resolved");
        debug_assert_eq!(h0.generation(), rel0.physical_rows());
        // Pipelined group walk: the boundary scan runs a ring's worth of
        // packed runs ahead of the walk, resolving each run's
        // representative key and full hash exactly once and prefetching
        // the map slot that hash will probe — the warm memo when one is
        // armed, the dictionary otherwise. By the time the walk reaches
        // a run, its line has had several groups' worth of join work to
        // arrive, so the per-group random access overlaps with useful
        // work instead of serializing one cache miss per group.
        const GROUP_RING: usize = 16;
        group_starts.clear();
        group_starts.resize(GROUP_RING, 0);
        group_hashes.clear();
        group_hashes.resize(GROUP_RING, 0);
        group_keys.clear();
        group_keys.resize(GROUP_RING * w0, Value::Int(0));
        let mut fill_pos = 0usize; // chunk index where the scan resumes
        let mut filled = 0usize; // packed runs resolved so far
        let mut walk = 0usize; // next run to walk
        while walk < filled || fill_pos < chunk.len() {
            // Top up the ring. One slot stays free so the run being
            // walked and its successor (whose start is the walked run's
            // end) are never overwritten by the scan.
            while fill_pos < chunk.len() && filled - walk < GROUP_RING - 1 {
                let slot = filled & (GROUP_RING - 1);
                let ghi = pack_seed(chunk[fill_pos], 0);
                let rep_row = seed_rel.row(chunk[fill_pos] as u32);
                let ks = slot * w0;
                for (j, &src) in k.probes[0].key.iter().enumerate() {
                    group_keys[ks + j] = ctx.src_val(src, rep_row, &rowids);
                }
                let gh = hash_slice(&group_keys[ks..ks + w0]);
                group_starts[slot] = fill_pos as u32;
                group_hashes[slot] = gh;
                match &depth_memos[0] {
                    Some(m) if !m.map.is_empty() => m.map.prefetch(gh),
                    // SAFETY: frozen for the round (`ProbeHandle` docs).
                    _ => unsafe { h0.prefetch_key(gh) },
                }
                fill_pos += 1;
                while fill_pos < chunk.len() && pack_seed(chunk[fill_pos], 0) == ghi {
                    fill_pos += 1;
                }
                filled += 1;
            }
            let slot = walk & (GROUP_RING - 1);
            let run_start = group_starts[slot] as usize;
            let run_end = if walk + 1 < filled {
                group_starts[(walk + 1) & (GROUP_RING - 1)] as usize
            } else {
                chunk.len()
            };
            key_buf[..w0].copy_from_slice(&group_keys[slot * w0..slot * w0 + w0]);
            let run_hash = group_hashes[slot];
            walk += 1;
            // The packed words carry only the hash's high half, so a
            // run can mix distinct keys; verify by value so every group
            // holds exactly one key. A colliding row simply starts its
            // own group — per-member count replay makes that equivalent.
            let mut gs = run_start;
            while gs < run_end {
                let rep_row = seed_rel.row(chunk[gs] as u32);
                if gs != run_start {
                    // A collision subgroup resolves its own key; the
                    // run head's came from the ring.
                    for (j, &src) in k.probes[0].key.iter().enumerate() {
                        key_buf[j] = ctx.src_val(src, rep_row, &rowids);
                    }
                }
                let mut ge = gs + 1;
                while ge < run_end {
                    let row = seed_rel.row(chunk[ge] as u32);
                    let same = k.probes[0]
                        .key
                        .iter()
                        .enumerate()
                        .all(|(j, &src)| ctx.src_val(src, row, &rowids) == key_buf[j]);
                    if !same {
                        break;
                    }
                    ge += 1;
                }
                let members = &chunk[gs..ge];
                let m = members.len() as u64;
                // The run head reuses the hash the scan computed; a
                // collision-split subgroup recomputes its own.
                let gh = if gs == run_start {
                    run_hash
                } else {
                    hash_slice(&key_buf[..w0])
                };
                gs = ge;
                // One key→code resolution per group — the amortized
                // probe, served from the EDB memo when armed.
                // SAFETY: frozen for the round (see `ProbeHandle` docs).
                let depth0 = match unsafe {
                    encode_memoized(h0, depth_memos[0].as_deref_mut(), gh, &key_buf[..w0], stats)
                } {
                    Some(code) => {
                        let g = unsafe { h0.group(code) };
                        (g.as_ptr(), g.len() as u32)
                    }
                    None => {
                        // No depth-0 rows for this key: every member
                        // opens and at once exhausts the probe.
                        stats.probes += m;
                        continue;
                    }
                };
                if split == 0 {
                    // Member-dependent depth 0: per-member enumeration
                    // over the shared pre-fetched group.
                    if !ctx.member_tail(
                        ev,
                        seed_rel,
                        members,
                        depth0,
                        key_buf,
                        &mut cursors,
                        &mut rowids,
                        &mut ticks,
                        stats,
                        out,
                    ) {
                        return false;
                    }
                    continue;
                }
                // Group phase: enumerate the invariant prefix once
                // against the representative row; local counters replay
                // ×members.
                let (mut lp, mut lph, mut lrs, mut lce) = (1u64, 0u64, 0u64, 0u64);
                cursors[0] = (depth0.0, depth0.1, 0);
                let mut d = 0usize;
                let mut entering = false; // depth-0 cursor pre-opened
                loop {
                    let p = &k.probes[d];
                    let (rel, range, handle) = ctx.prels[d].as_ref().expect("probe depth resolved");
                    if entering {
                        lp += 1;
                        let (ks, ke) = (key_off[d], key_off[d + 1]);
                        for (j, &src) in p.key.iter().enumerate() {
                            key_buf[ks + j] = ctx.src_val(src, rep_row, &rowids);
                        }
                        let key = &key_buf[ks..ke];
                        let kh = hash_slice(key);
                        // SAFETY: frozen for the round (`ProbeHandle`
                        // docs).
                        cursors[d] = match unsafe {
                            encode_memoized(handle, depth_memos[d].as_deref_mut(), kh, key, stats)
                        } {
                            Some(code) => {
                                let g = unsafe { handle.group(code) };
                                (g.as_ptr(), g.len() as u32, 0)
                            }
                            None => (std::ptr::null(), 0, 0),
                        };
                        entering = false;
                    }
                    // Advance depth d to its next matching row.
                    let mut matched = false;
                    {
                        let (ptr, len, pos) = &mut cursors[d];
                        while *pos < *len {
                            // SAFETY: group storage is frozen for the
                            // round.
                            let rid = unsafe { *ptr.add(*pos as usize) };
                            *pos += 1;
                            if !rel.row_visible(rid, *range) {
                                continue;
                            }
                            lph += 1;
                            lrs += 1;
                            ticks += 1;
                            if ticks & POLL_MASK == 0 && ev.should_abort() {
                                return false;
                            }
                            let row = rel.row(rid);
                            if row.len() != p.arity {
                                continue;
                            }
                            rowids[d] = rid;
                            let mut ok = true;
                            for &(c, src) in &p.checks {
                                if row[c] != ctx.src_val(src, rep_row, &rowids) {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                for g in &p.guards {
                                    lce += 1;
                                    if !ctx.guard_ok(g, rep_row, &rowids) {
                                        ok = false;
                                        break;
                                    }
                                }
                            }
                            if !ok {
                                continue;
                            }
                            matched = true;
                            break;
                        }
                    }
                    if matched {
                        if p.existential {
                            // Invariant existential: the first hit
                            // serves every member — a group-level
                            // short-circuit.
                            cursors[d].2 = cursors[d].1;
                        }
                        if d + 1 < split {
                            d += 1;
                            entering = true;
                            continue;
                        }
                        // Full invariant prefix match: per-member tail.
                        if !ctx.member_tail(
                            ev,
                            seed_rel,
                            members,
                            depth0,
                            key_buf,
                            &mut cursors,
                            &mut rowids,
                            &mut ticks,
                            stats,
                            out,
                        ) {
                            return false;
                        }
                        // Stay at the deepest invariant depth, advance.
                    } else if d == 0 {
                        break;
                    } else {
                        d -= 1;
                    }
                }
                stats.probes += lp * m;
                stats.probe_hits += lph * m;
                stats.rows_scanned += lrs * m;
                stats.cmp_evals += lce * m;
            }
        }
    }
    true
}

/// Resolves `key` (with full hash `hash`) to its dictionary code,
/// through the armed per-depth memo when one exists. A memo hit skips
/// the dictionary walk entirely — the cached code is still verified
/// against live key storage, so hits can never alias — while a miss
/// walks the dictionary and caches a positive resolution for later
/// rounds. Counter discipline: `dict_memo_hits` counts served-from-memo
/// resolutions, `dict_probes` counts real dictionary walks; both are
/// physical-event counters, not replayed per group member like the
/// logical work counters.
///
/// # Safety
/// Same contract as [`ProbeHandle::encode`]: the index behind `handle`
/// must be frozen for the duration of the call.
#[inline]
unsafe fn encode_memoized(
    handle: &ProbeHandle,
    memo: Option<&mut DepthMemo>,
    hash: u64,
    key: &[Value],
    stats: &mut Stats,
) -> Option<u32> {
    if let Some(m) = memo {
        // SAFETY: forwarded from the caller.
        if let Some(c) = m.map.get(hash, |c| unsafe { handle.code_key(c) } == key) {
            stats.dict_memo_hits += 1;
            return Some(c);
        }
        stats.dict_probes += 1;
        // SAFETY: forwarded from the caller.
        let resolved = unsafe { handle.encode(hash, key) };
        if let Some(c) = resolved {
            // SAFETY: forwarded from the caller.
            m.map
                .insert(hash, c, |cc| hash_slice(unsafe { handle.code_key(cc) }));
        }
        return resolved;
    }
    stats.dict_probes += 1;
    // SAFETY: forwarded from the caller.
    unsafe { handle.encode(hash, key) }
}

/// Computes the stratum of each IDB predicate: a rule head is at least its
/// positive IDB subgoals' strata and strictly above its negated IDB
/// subgoals' strata. Errors when negation occurs in a recursive cycle.
fn stratify(
    program: &Program,
    idb_preds: &BTreeSet<Pred>,
) -> Result<BTreeMap<Pred, usize>, EngineError> {
    let mut strata: BTreeMap<Pred, usize> = idb_preds.iter().map(|&p| (p, 0)).collect();
    let limit = idb_preds.len() + 1;
    for pass in 0..=limit {
        let mut changed = false;
        for rule in &program.rules {
            let h = rule.head.pred;
            let mut need = strata.get(&h).copied().unwrap_or(0);
            for l in &rule.body {
                if let Some(a) = l.as_atom() {
                    if let Some(&s) = strata.get(&a.pred) {
                        need = need.max(s);
                    }
                }
                if let Some(a) = l.as_neg() {
                    if let Some(&s) = strata.get(&a.pred) {
                        need = need.max(s + 1);
                    }
                }
            }
            if need > strata[&h] {
                strata.insert(h, need);
                changed = true;
            }
        }
        if !changed {
            return Ok(strata);
        }
        if pass == limit {
            break;
        }
    }
    Err(EngineError::NotStratified(
        "negation occurs inside a recursive cycle".into(),
    ))
}

/// One-shot convenience: evaluates `program` over `db` to fixpoint.
pub fn evaluate(
    db: &Database,
    program: &Program,
    strategy: Strategy,
) -> Result<EvalResult, EngineError> {
    let mut ev = Evaluator::new(db, program, strategy)?;
    ev.run()?;
    Ok(ev.finish())
}

/// Like [`evaluate`], with `threads` workers per round.
pub fn evaluate_parallel(
    db: &Database,
    program: &Program,
    strategy: Strategy,
    threads: usize,
) -> Result<EvalResult, EngineError> {
    let mut ev = Evaluator::new(db, program, strategy)?.with_parallelism(threads);
    ev.run()?;
    Ok(ev.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::int_tuple;
    use semrec_datalog::parser::{parse_atom, parse_unit};

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert("e", int_tuple(&[i, i + 1]));
        }
        db
    }

    fn tc_program() -> Program {
        "t(X,Y) :- e(X,Y). t(X,Y) :- e(X,Z), t(Z,Y)."
            .parse()
            .unwrap()
    }

    #[test]
    fn transitive_closure_seminaive() {
        let db = chain_db(10);
        let res = evaluate(&db, &tc_program(), Strategy::SemiNaive).unwrap();
        let t = res.relation("t").unwrap();
        assert_eq!(t.len(), 10 * 11 / 2);
        assert!(t.contains(&int_tuple(&[0, 10])));
        assert!(!t.contains(&int_tuple(&[5, 5])));
    }

    #[test]
    fn naive_equals_seminaive() {
        let db = chain_db(8);
        let a = evaluate(&db, &tc_program(), Strategy::Naive).unwrap();
        let b = evaluate(&db, &tc_program(), Strategy::SemiNaive).unwrap();
        assert_eq!(
            a.relation("t").unwrap().sorted_tuples(),
            b.relation("t").unwrap().sorted_tuples()
        );
        // Naive derives (weakly) more duplicate tuples.
        assert!(a.stats.derived >= b.stats.derived);
    }

    #[test]
    fn right_linear_recursion() {
        let db = chain_db(6);
        let p: Program = "t(X,Y) :- e(X,Y). t(X,Y) :- t(X,Z), e(Z,Y)."
            .parse()
            .unwrap();
        let res = evaluate(&db, &p, Strategy::SemiNaive).unwrap();
        assert_eq!(res.relation("t").unwrap().len(), 6 * 7 / 2);
    }

    #[test]
    fn filters_and_constants() {
        let db = chain_db(10);
        let p: Program = "big(X,Y) :- e(X,Y), X >= 5. pick(Y) :- e(3, Y)."
            .parse()
            .unwrap();
        let res = evaluate(&db, &p, Strategy::SemiNaive).unwrap();
        assert_eq!(res.relation("big").unwrap().len(), 5);
        assert_eq!(res.relation("pick").unwrap().len(), 1);
        assert!(res.relation("pick").unwrap().contains(&int_tuple(&[4])));
    }

    #[test]
    fn equality_assignment_binding() {
        let db = chain_db(4);
        let p: Program = "q(X, Y) :- e(X, Z), Y = Z.".parse().unwrap();
        let res = evaluate(&db, &p, Strategy::SemiNaive).unwrap();
        assert_eq!(res.relation("q").unwrap().len(), 4);
    }

    #[test]
    fn multi_idb_rule_and_mutual_layers() {
        // Two IDB atoms in one body (join of two derived relations).
        let mut db = chain_db(4);
        db.insert("f", int_tuple(&[4, 9]));
        let p: Program = "a(X,Y) :- e(X,Y). a(X,Y) :- e(X,Z), a(Z,Y).
                          b(X,Y) :- f(X,Y). c(X,Y) :- a(X,Z), b(Z,Y)."
            .parse()
            .unwrap();
        let res = evaluate(&db, &p, Strategy::SemiNaive).unwrap();
        // a = closure of the 0→1→2→3→4 chain; c(X, 9) for every a(X, 4).
        assert_eq!(
            res.relation("c").unwrap().sorted_tuples(),
            vec![
                int_tuple(&[0, 9]),
                int_tuple(&[1, 9]),
                int_tuple(&[2, 9]),
                int_tuple(&[3, 9]),
            ]
        );
    }

    #[test]
    fn cyclic_data_terminates() {
        let mut db = Database::new();
        for i in 0..5 {
            db.insert("e", int_tuple(&[i, (i + 1) % 5]));
        }
        let res = evaluate(&db, &tc_program(), Strategy::SemiNaive).unwrap();
        assert_eq!(res.relation("t").unwrap().len(), 25);
    }

    #[test]
    fn answers_filtering() {
        let db = chain_db(5);
        let res = evaluate(&db, &tc_program(), Strategy::SemiNaive).unwrap();
        let goal = parse_atom("t(0, Y)").unwrap();
        assert_eq!(res.answers(&goal).len(), 5);
        let goal = parse_atom("t(X, X)").unwrap();
        assert!(res.answers(&goal).is_empty());
    }

    #[test]
    fn undefined_edb_predicate_is_empty() {
        let db = Database::new();
        let p: Program = "p(X) :- ghost(X).".parse().unwrap();
        let res = evaluate(&db, &p, Strategy::SemiNaive).unwrap();
        assert_eq!(res.relation("p").unwrap().len(), 0);
    }

    #[test]
    fn iteration_limit() {
        let db = chain_db(50);
        let mut ev = Evaluator::new(&db, &tc_program(), Strategy::SemiNaive)
            .unwrap()
            .with_max_iterations(3);
        let err = ev.run().unwrap_err();
        assert!(matches!(err, EngineError::IterationLimit(3)));
    }

    #[test]
    fn string_valued_columns() {
        let unit = parse_unit(
            "boss(amy, bob, executive). boss(bob, cal, manager).
             exec_boss(E, B) :- boss(E, B, R), R = executive.",
        )
        .unwrap();
        let db = Database::from_facts(&unit.facts);
        let res = evaluate(&db, &unit.program(), Strategy::SemiNaive).unwrap();
        assert_eq!(res.relation("exec_boss").unwrap().len(), 1);
    }

    #[test]
    fn seminaive_beats_naive_on_work() {
        let db = chain_db(30);
        let naive = evaluate(&db, &tc_program(), Strategy::Naive).unwrap();
        let semi = evaluate(&db, &tc_program(), Strategy::SemiNaive).unwrap();
        assert!(semi.stats.rows_scanned < naive.stats.rows_scanned);
        assert_eq!(
            naive.relation("t").unwrap().len(),
            semi.relation("t").unwrap().len()
        );
    }

    #[test]
    fn goal_matches_is_allocation_free_semantics() {
        let goal = parse_atom("t(X, X, 3)").unwrap();
        assert!(goal_matches(
            &goal,
            &[Value::Int(7), Value::Int(7), Value::Int(3)]
        ));
        assert!(!goal_matches(
            &goal,
            &[Value::Int(7), Value::Int(8), Value::Int(3)]
        ));
        assert!(!goal_matches(
            &goal,
            &[Value::Int(7), Value::Int(7), Value::Int(4)]
        ));
        // Arity mismatch is a non-match, not a panic.
        assert!(!goal_matches(&goal, &[Value::Int(7)]));
    }
}

#[cfg(test)]
mod negation_tests {
    use super::*;
    use crate::database::int_tuple;

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert("e", int_tuple(&[i, i + 1]));
        }
        db
    }

    #[test]
    fn negation_over_edb() {
        let mut db = chain_db(4);
        db.insert("blocked", vec![Value::Int(2)]);
        let p: Program = "open(X, Y) :- e(X, Y), !blocked(X).".parse().unwrap();
        let res = evaluate(&db, &p, Strategy::SemiNaive).unwrap();
        assert_eq!(res.relation("open").unwrap().len(), 3);
        assert!(!res.relation("open").unwrap().contains(&int_tuple(&[2, 3])));
    }

    #[test]
    fn negation_over_idb_uses_lower_stratum() {
        // Complement of reachability from 0 within the node set.
        let db = chain_db(4);
        let p: Program = "
            node(X) :- e(X, Y).
            node(Y) :- e(X, Y).
            reach(X) :- e(0, X).
            reach(Y) :- reach(X), e(X, Y).
            unreach(X) :- node(X), !reach(X), X != 0.
        "
        .parse()
        .unwrap();
        let res = evaluate(&db, &p, Strategy::SemiNaive).unwrap();
        // Every node except 0 is reachable in the chain: unreach is empty.
        assert_eq!(res.relation("unreach").unwrap().len(), 0);

        // Break the chain: remove edge 1→2 by rebuilding.
        let mut db2 = Database::new();
        for (a, b) in [(0, 1), (2, 3), (3, 4)] {
            db2.insert("e", int_tuple(&[a, b]));
        }
        let res = evaluate(&db2, &p, Strategy::SemiNaive).unwrap();
        let un = res.relation("unreach").unwrap().sorted_tuples();
        assert_eq!(un, vec![int_tuple(&[2]), int_tuple(&[3]), int_tuple(&[4])]);
    }

    #[test]
    fn negation_in_cycle_is_rejected() {
        let db = chain_db(2);
        let p: Program = "a(X) :- e(X, Y), !b(X). b(X) :- e(X, Y), !a(X)."
            .parse()
            .unwrap();
        let err = match Evaluator::new(&db, &p, Strategy::SemiNaive) {
            Err(e) => e,
            Ok(_) => panic!("expected stratification error"),
        };
        assert!(matches!(err, EngineError::NotStratified(_)));
    }

    #[test]
    fn unsafe_negation_is_rejected() {
        let db = chain_db(2);
        let p: Program = "a(X) :- e(X, Y), !ghost(Z).".parse().unwrap();
        let err = match Evaluator::new(&db, &p, Strategy::SemiNaive) {
            Err(e) => e,
            Ok(_) => panic!("expected unsafe-rule error"),
        };
        assert!(matches!(err, EngineError::UnsafeRule { .. }));
    }

    #[test]
    fn naive_and_seminaive_agree_with_negation() {
        let db = chain_db(6);
        let p: Program = "
            reach(X) :- e(0, X).
            reach(Y) :- reach(X), e(X, Y).
            node(X) :- e(X, Y).
            node(Y) :- e(X, Y).
            island(X) :- node(X), !reach(X).
        "
        .parse()
        .unwrap();
        let a = evaluate(&db, &p, Strategy::Naive).unwrap();
        let b = evaluate(&db, &p, Strategy::SemiNaive).unwrap();
        for pred in ["reach", "node", "island"] {
            assert_eq!(
                a.relation(pred).unwrap().sorted_tuples(),
                b.relation(pred).unwrap().sorted_tuples()
            );
        }
    }

    #[test]
    fn three_strata() {
        let db = chain_db(3);
        let p: Program = "
            a(X) :- e(X, Y).
            b(X) :- e(X, Y), !a(Y).
            c(X) :- e(X, Y), !b(X).
        "
        .parse()
        .unwrap();
        let res = evaluate(&db, &p, Strategy::SemiNaive).unwrap();
        // a = {0,1,2}; b(X) holds when e(X,Y) and Y ∉ a → only Y=3 → b={2};
        // c(X) when e(X,Y) and X ∉ b → c={0,1}.
        assert_eq!(res.relation("a").unwrap().len(), 3);
        assert_eq!(
            res.relation("b").unwrap().sorted_tuples(),
            vec![int_tuple(&[2])]
        );
        assert_eq!(
            res.relation("c").unwrap().sorted_tuples(),
            vec![int_tuple(&[0]), int_tuple(&[1])]
        );
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::database::int_tuple;

    fn tc() -> Program {
        "t(X,Y) :- e(X,Y). t(X,Y) :- e(X,Z), t(Z,Y).
         s(X,Y) :- f(X,Y). s(X,Y) :- f(X,Z), s(Z,Y)."
            .parse()
            .unwrap()
    }

    fn db() -> Database {
        let mut db = Database::new();
        for i in 0..40i64 {
            db.insert("e", int_tuple(&[i, i + 1]));
            db.insert("f", int_tuple(&[i + 1, i]));
        }
        db
    }

    #[test]
    fn parallel_matches_sequential() {
        let db = db();
        let prog = tc();
        let mut seq = Evaluator::new(&db, &prog, Strategy::SemiNaive).unwrap();
        seq.run().unwrap();
        let seq = seq.finish();
        let mut par = Evaluator::new(&db, &prog, Strategy::SemiNaive)
            .unwrap()
            .with_parallelism(4)
            .with_cutover(Cutover::ForceParallel);
        par.run().unwrap();
        let par = par.finish();
        for p in ["t", "s"] {
            assert_eq!(
                seq.relation(p).unwrap().sorted_tuples(),
                par.relation(p).unwrap().sorted_tuples()
            );
        }
        // The workload counters are workload properties, not scheduling
        // properties — identical under any partitioning.
        assert_eq!(seq.stats.derived, par.stats.derived);
        assert_eq!(seq.stats.rows_scanned, par.stats.rows_scanned);
        assert_eq!(seq.stats.inserted, par.stats.inserted);
    }

    #[test]
    fn parallel_with_negation_strata() {
        let db = db();
        let prog: Program = "
            reach(X) :- e(0, X).
            reach(Y) :- reach(X), e(X, Y).
            node(X) :- e(X, Y).
            node(Y) :- e(X, Y).
            island(X) :- node(X), !reach(X), X != 0.
        "
        .parse()
        .unwrap();
        let mut a = Evaluator::new(&db, &prog, Strategy::SemiNaive).unwrap();
        a.run().unwrap();
        let a = a.finish();
        let mut b = Evaluator::new(&db, &prog, Strategy::SemiNaive)
            .unwrap()
            .with_parallelism(3)
            .with_cutover(Cutover::ForceParallel);
        b.run().unwrap();
        let b = b.finish();
        for p in ["reach", "node", "island"] {
            assert_eq!(
                a.relation(p).unwrap().sorted_tuples(),
                b.relation(p).unwrap().sorted_tuples(),
                "mismatch on {p}"
            );
        }
    }

    #[test]
    fn parallelism_one_is_identity() {
        let db = db();
        let prog = tc();
        let mut e = Evaluator::new(&db, &prog, Strategy::SemiNaive)
            .unwrap()
            .with_parallelism(1);
        e.run().unwrap();
        assert!(!e.finish().relation("t").unwrap().is_empty());
    }

    #[test]
    fn data_parallel_partitioning_kicks_in_on_large_deltas() {
        // A wide fan: one round with a delta far above the partition
        // threshold, so the pool must run partitioned tasks.
        let mut db = Database::new();
        for i in 0..2000i64 {
            db.insert("e", int_tuple(&[0, i + 1]));
            db.insert("g", int_tuple(&[i + 1, i % 7]));
        }
        let prog: Program = "t(X,Y) :- e(X,Y). u(X,Z) :- t(X,Y), g(Y,Z)."
            .parse()
            .unwrap();
        let mut seq = Evaluator::new(&db, &prog, Strategy::SemiNaive).unwrap();
        seq.run().unwrap();
        let mut par = Evaluator::new(&db, &prog, Strategy::SemiNaive)
            .unwrap()
            .with_parallelism(4)
            .with_cutover(Cutover::ForceParallel);
        par.run().unwrap();
        let ps = par.pool_stats();
        assert!(ps.parallel_rounds > 0, "pool must have run: {ps:?}");
        assert_eq!(ps.shards, 4, "K = next_pow2(threads): {ps:?}");
        assert!(
            ps.tasks > ps.parallel_rounds + ps.parallel_rounds * ps.shards as u64,
            "large scans must split beyond the per-shard merge jobs: {ps:?}"
        );
        assert!(ps.merge_nanos > 0, "merge phase must be accounted: {ps:?}");
        let seq = seq.finish();
        let par = par.finish();
        for p in ["t", "u"] {
            assert_eq!(
                seq.relation(p).unwrap().sorted_tuples(),
                par.relation(p).unwrap().sorted_tuples()
            );
        }
    }

    #[test]
    fn pool_stats_expose_busy_and_index_time() {
        let mut db = Database::new();
        for i in 0..600i64 {
            db.insert("e", int_tuple(&[i, (i + 1) % 600]));
        }
        let prog = "t(X,Y) :- e(X,Y). t(X,Y) :- e(X,Z), t(Z,Y)."
            .parse::<Program>()
            .unwrap();
        let mut ev = Evaluator::new(&db, &prog, Strategy::SemiNaive)
            .unwrap()
            .with_parallelism(2)
            .with_cutover(Cutover::ForceParallel);
        ev.run().unwrap();
        let ps = ev.pool_stats();
        assert!(ps.parallel_rounds > 0);
        assert!(ps.busy_nanos > 0);
        assert!(ps.wall_nanos > 0);
        assert!(ps.rows_dispatched > 0);
        assert_eq!(ps.workers, 2);
        let frac = ps.busy_fraction();
        assert!((0.0..=1.0).contains(&frac), "busy fraction {frac}");
        assert!(ps.rows_per_sec() > 0.0);
    }

    #[test]
    fn serial_rounds_report_throughput() {
        // Satellite fix: threads=1 used to emit busy_fraction=0 and
        // rows_per_sec=0, making the bench JSON incomparable across
        // thread counts. Serial rounds now account wall time + seed rows.
        let db = db();
        let mut ev = Evaluator::new(&db, &tc(), Strategy::SemiNaive)
            .unwrap()
            .with_parallelism(1);
        ev.run().unwrap();
        let ps = ev.pool_stats();
        assert!(ps.serial_rounds > 0, "{ps:?}");
        assert_eq!(ps.parallel_rounds, 0, "{ps:?}");
        assert!(ps.serial_nanos > 0, "{ps:?}");
        assert!(ps.serial_rows > 0, "{ps:?}");
        assert!(ps.rows_per_sec() > 0.0, "{ps:?}");
        assert!(
            ps.busy_fraction() > 0.9,
            "one serial thread is ~fully busy: {ps:?}"
        );
    }

    #[test]
    fn auto_cutover_keeps_tiny_workloads_off_the_pool() {
        // Every round of this workload is far below the pre-pool floor,
        // so Auto mode must never spawn the pool — regardless of the
        // machine's core count.
        let db = db();
        let mut ev = Evaluator::new(&db, &tc(), Strategy::SemiNaive)
            .unwrap()
            .with_parallelism(4); // Cutover::Auto is the default
        ev.run().unwrap();
        let ps = ev.pool_stats();
        assert_eq!(
            ps.parallel_rounds, 0,
            "tiny deltas must stay serial: {ps:?}"
        );
        assert!(ps.serial_rounds > 0, "{ps:?}");
        assert!(ps.rows_per_sec() > 0.0, "{ps:?}");
        assert!(!ev.finish().relation("t").unwrap().is_empty());
    }

    #[test]
    fn min_rows_cutover_is_respected() {
        let db = db();
        let mut hi = Evaluator::new(&db, &tc(), Strategy::SemiNaive)
            .unwrap()
            .with_parallelism(4)
            .with_cutover(Cutover::MinRows(u64::MAX));
        hi.run().unwrap();
        let ps = hi.pool_stats();
        assert_eq!(ps.parallel_rounds, 0, "{ps:?}");
        assert_eq!(ps.cutover_rows, u64::MAX, "{ps:?}");

        let mut lo = Evaluator::new(&db, &tc(), Strategy::SemiNaive)
            .unwrap()
            .with_parallelism(4)
            .with_cutover(Cutover::MinRows(1));
        lo.run().unwrap();
        assert!(lo.pool_stats().parallel_rounds > 0, "{:?}", lo.pool_stats());
        let hi = hi.finish();
        let lo = lo.finish();
        for p in ["t", "s"] {
            assert_eq!(
                hi.relation(p).unwrap().sorted_tuples(),
                lo.relation(p).unwrap().sorted_tuples()
            );
        }
    }

    #[test]
    fn shard_count_override_preserves_results() {
        let db = db();
        let prog = tc();
        let mut base = Evaluator::new(&db, &prog, Strategy::SemiNaive).unwrap();
        base.run().unwrap();
        let base = base.finish();
        for k in [1usize, 2, 8] {
            let mut ev = Evaluator::new(&db, &prog, Strategy::SemiNaive)
                .unwrap()
                .with_parallelism(3)
                .with_shards(k)
                .with_cutover(Cutover::ForceParallel);
            ev.run().unwrap();
            let ps = ev.pool_stats();
            assert_eq!(ps.shards, k.next_power_of_two(), "{ps:?}");
            let got = ev.finish();
            for p in ["t", "s"] {
                assert_eq!(
                    base.relation(p).unwrap().sorted_tuples(),
                    got.relation(p).unwrap().sorted_tuples(),
                    "IDB diverged at K={k}"
                );
            }
            assert_eq!(base.stats.derived, got.stats.derived);
            assert_eq!(base.stats.inserted, got.stats.inserted);
        }
    }
}

#[cfg(test)]
mod builtin_tests {
    use super::*;
    use crate::database::int_tuple;

    #[test]
    fn plus_forward_mode() {
        let mut db = Database::new();
        db.insert("n", int_tuple(&[1]));
        db.insert("n", int_tuple(&[2]));
        let p: Program = "inc(X, Y) :- n(X), plus(X, 1, Y).".parse().unwrap();
        let res = evaluate(&db, &p, Strategy::SemiNaive).unwrap();
        assert_eq!(
            res.relation("inc").unwrap().sorted_tuples(),
            vec![int_tuple(&[1, 2]), int_tuple(&[2, 3])]
        );
    }

    #[test]
    fn plus_inverse_mode_and_check() {
        let mut db = Database::new();
        db.insert("pair", int_tuple(&[3, 10]));
        db.insert("pair", int_tuple(&[4, 9]));
        // diff: D such that X + D = Y.
        let p: Program = "
            diff(X, Y, D) :- pair(X, Y), plus(X, D, Y).
            exact(X, Y) :- pair(X, Y), plus(X, 7, Y).
        "
        .parse()
        .unwrap();
        let res = evaluate(&db, &p, Strategy::SemiNaive).unwrap();
        assert_eq!(
            res.relation("diff").unwrap().sorted_tuples(),
            vec![int_tuple(&[3, 10, 7]), int_tuple(&[4, 9, 5])]
        );
        assert_eq!(
            res.relation("exact").unwrap().sorted_tuples(),
            vec![int_tuple(&[3, 10])]
        );
    }

    #[test]
    fn recursion_with_arithmetic() {
        // Hop counting: dist(X, Y, N) — chain of length 5.
        let mut db = Database::new();
        for i in 0..5 {
            db.insert("e", int_tuple(&[i, i + 1]));
        }
        let p: Program = "
            dist(X, Y, 1) :- e(X, Y).
            dist(X, Y, N) :- dist(X, Z, M), e(Z, Y), plus(M, 1, N).
        "
        .parse()
        .unwrap();
        let res = evaluate(&db, &p, Strategy::SemiNaive).unwrap();
        let d = res.relation("dist").unwrap();
        assert!(d.contains(&int_tuple(&[0, 5, 5])));
        assert!(d.contains(&int_tuple(&[2, 4, 2])));
        assert_eq!(d.len(), 15);
    }

    #[test]
    fn times_exactness_filters() {
        let mut db = Database::new();
        for i in [6, 7, 12] {
            db.insert("n", int_tuple(&[i]));
        }
        let p: Program = "third(X, Y) :- n(X), times(Y, 3, X).".parse().unwrap();
        let res = evaluate(&db, &p, Strategy::SemiNaive).unwrap();
        assert_eq!(
            res.relation("third").unwrap().sorted_tuples(),
            vec![int_tuple(&[6, 2]), int_tuple(&[12, 4])]
        );
    }

    #[test]
    fn underconstrained_builtin_is_unsafe() {
        let db = Database::new();
        let p: Program = "bad(X, Y, Z) :- n(X), plus(Y, Z, W).".parse().unwrap();
        assert!(matches!(
            Evaluator::new(&db, &p, Strategy::SemiNaive),
            Err(EngineError::UnsafeRule { .. })
        ));
    }

    #[test]
    fn strings_fail_softly() {
        let mut db = Database::new();
        db.insert("v", vec![Value::str("x")]);
        db.insert("v", vec![Value::Int(4)]);
        let p: Program = "inc(X, Y) :- v(X), plus(X, 1, Y).".parse().unwrap();
        let res = evaluate(&db, &p, Strategy::SemiNaive).unwrap();
        assert_eq!(
            res.relation("inc").unwrap().sorted_tuples(),
            vec![int_tuple(&[4, 5])]
        );
    }
}
