//! Resource governance: budgets and cooperative cancellation.
//!
//! The fixpoint loop used to have exactly one guard against runaway
//! evaluation — the iteration cap. This module adds the rest of the
//! degrade-don't-die discipline the ROADMAP's production north star
//! needs: a [`Budget`] bundling a wall-clock deadline, an IDB row cap
//! and a resident-byte cap (estimated from [`Relation`] flat storage)
//! next to the iteration cap, and a [`CancelToken`] that lets another
//! thread interrupt an evaluation.
//!
//! Enforcement has two tiers. *Round-boundary* checks (rows, bytes,
//! iterations) run on the control thread between rounds, where the
//! committed relation state is authoritative. *Cooperative* checks
//! (deadline, cancellation) also run inside long scan loops and merge
//! jobs — every [`POLL_MASK`]+1 rows — through the [`Governor`], so a
//! deadline interrupts a round in flight instead of waiting for it to
//! finish. When a cooperative check trips, every other task sees the
//! sticky flag on its next poll and bails out too; the control thread
//! then discards the round's partial derivations (nothing is committed
//! on the error path), leaving every relation exactly as the last
//! completed round left it.
//!
//! [`Relation`]: crate::relation::Relation

use crate::error::EngineError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Cooperative checks poll the clock when `rows & POLL_MASK == 0`: every
/// 1024 rows, a few tens of nanoseconds of check per ~100µs of row work.
pub(crate) const POLL_MASK: u64 = 0x3FF;

/// Resource limits for one evaluation. All limits default to unlimited;
/// combine with the builder methods.
///
/// ```
/// use semrec_engine::Budget;
/// use std::time::Duration;
/// let b = Budget::unlimited()
///     .with_deadline(Duration::from_millis(250))
///     .with_max_idb_rows(1_000_000);
/// assert!(b.is_limited());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock budget for the whole evaluation, measured from the
    /// first round.
    pub deadline: Option<Duration>,
    /// Cap on total materialized IDB rows across all predicates.
    pub max_idb_rows: Option<u64>,
    /// Cap on estimated resident bytes of the IDB relations (flat
    /// storage + dedup structures; see `Relation::estimated_bytes`).
    pub max_resident_bytes: Option<u64>,
    /// Cap on fixpoint rounds (the pre-existing iteration limit).
    pub max_iterations: Option<u64>,
}

impl Budget {
    /// A budget with every limit disabled.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Budget {
        self.deadline = Some(d);
        self
    }

    /// Sets the IDB row cap.
    pub fn with_max_idb_rows(mut self, n: u64) -> Budget {
        self.max_idb_rows = Some(n);
        self
    }

    /// Sets the resident-byte cap.
    pub fn with_max_resident_bytes(mut self, n: u64) -> Budget {
        self.max_resident_bytes = Some(n);
        self
    }

    /// Sets the iteration cap.
    pub fn with_max_iterations(mut self, n: u64) -> Budget {
        self.max_iterations = Some(n);
        self
    }

    /// True if any limit is set (an unlimited budget costs nothing: the
    /// evaluator skips every check).
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some()
            || self.max_idb_rows.is_some()
            || self.max_resident_bytes.is_some()
            || self.max_iterations.is_some()
    }
}

/// A shared cancellation flag. Clone the token, hand the clone to the
/// evaluating thread, and call [`CancelToken::cancel`] from anywhere;
/// the evaluation returns [`EngineError::Cancelled`] at its next
/// cooperative check.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// The run-time arm of a [`Budget`]: anchors the deadline to the start
/// of evaluation and provides the sticky trip state that cooperative
/// checks read. Shared by reference with pool jobs (all interior
/// mutability), so a worker can trip it mid-round.
#[derive(Debug)]
pub(crate) struct Governor {
    cancel: CancelToken,
    started: Instant,
    deadline: Option<Instant>,
    /// Sticky fast-path flag: set exactly when `reason` is populated.
    tripped: AtomicBool,
    reason: Mutex<Option<EngineError>>,
}

impl Governor {
    /// Arms a governor for an evaluation starting now.
    pub(crate) fn new(budget: &Budget, cancel: CancelToken) -> Governor {
        let started = Instant::now();
        Governor {
            cancel,
            started,
            deadline: budget.deadline.map(|d| started + d),
            tripped: AtomicBool::new(false),
            reason: Mutex::new(None),
        }
    }

    /// Milliseconds since evaluation started.
    pub(crate) fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The cooperative check: cancellation and deadline. Returns `true`
    /// if evaluation must abort; the caller should unwind to the round
    /// boundary without committing anything. Cheap enough for hot loops
    /// behind a row-count mask: one relaxed load when already tripped,
    /// one atomic load plus at most one `Instant::now` otherwise.
    pub(crate) fn should_abort(&self) -> bool {
        if self.tripped.load(Ordering::Relaxed) {
            return true;
        }
        if self.cancel.is_cancelled() {
            self.trip(EngineError::Cancelled);
            return true;
        }
        if let Some(dl) = self.deadline {
            if Instant::now() >= dl {
                self.trip(EngineError::DeadlineExceeded {
                    elapsed_ms: self.elapsed_ms(),
                });
                return true;
            }
        }
        false
    }

    /// Records a trip reason (first writer wins) and sets the sticky flag.
    pub(crate) fn trip(&self, err: EngineError) {
        let mut reason = self.reason.lock().unwrap_or_else(|e| e.into_inner());
        if reason.is_none() {
            *reason = Some(err);
        }
        self.tripped.store(true, Ordering::Release);
    }

    /// The trip reason, if any check has tripped.
    pub(crate) fn reason(&self) -> Option<EngineError> {
        if !self.tripped.load(Ordering::Acquire) {
            return None;
        }
        self.reason
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_is_unlimited() {
        assert!(!Budget::unlimited().is_limited());
        assert!(Budget::unlimited().with_max_idb_rows(5).is_limited());
        assert!(Budget::unlimited()
            .with_deadline(Duration::from_millis(1))
            .is_limited());
        assert!(Budget::unlimited().with_max_resident_bytes(1).is_limited());
        assert!(Budget::unlimited().with_max_iterations(1).is_limited());
    }

    #[test]
    fn cancel_token_is_shared() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled());
        a.cancel(); // idempotent
        assert!(b.is_cancelled());
    }

    #[test]
    fn governor_trips_on_cancel_and_sticks() {
        let token = CancelToken::new();
        let gov = Governor::new(&Budget::unlimited(), token.clone());
        assert!(!gov.should_abort());
        assert!(gov.reason().is_none());
        token.cancel();
        assert!(gov.should_abort());
        assert_eq!(gov.reason(), Some(EngineError::Cancelled));
        // Sticky: still tripped, reason unchanged.
        assert!(gov.should_abort());
        assert_eq!(gov.reason(), Some(EngineError::Cancelled));
    }

    #[test]
    fn governor_trips_on_deadline() {
        let budget = Budget::unlimited().with_deadline(Duration::from_millis(0));
        let gov = Governor::new(&budget, CancelToken::new());
        std::thread::sleep(Duration::from_millis(2));
        assert!(gov.should_abort());
        assert!(matches!(
            gov.reason(),
            Some(EngineError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn first_trip_reason_wins() {
        let gov = Governor::new(&Budget::unlimited(), CancelToken::new());
        gov.trip(EngineError::Cancelled);
        gov.trip(EngineError::DeadlineExceeded { elapsed_ms: 1 });
        assert_eq!(gov.reason(), Some(EngineError::Cancelled));
    }
}
