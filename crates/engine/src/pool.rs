//! A persistent worker pool for intra-round parallelism.
//!
//! The evaluator used to spawn a fresh `crossbeam::thread::scope` (and N
//! OS threads) for every rule batch of every fixpoint round; on workloads
//! with many small rounds the spawn/join cost dwarfed the joins being
//! parallelized. This pool spawns its `std::thread` workers **once** and
//! feeds them per-round over channels: a round dispatches a batch of jobs
//! round-robin, then blocks until every job has reported completion.
//!
//! Scoped-borrow safety: jobs may borrow the caller's stack (they capture
//! `&Evaluator`), which is sound for the same reason `std::thread::scope`
//! is — [`WorkerPool::run`] does not return until every dispatched job has
//! completed (or the pool panics), so no borrow outlives the call. The
//! lifetime erasure this requires is confined to [`WorkerPool::run`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::Instant;

/// A unit of work dispatched to a worker. Jobs report results through
/// channels they capture; the pool only tracks completion and busy time.
pub type Job<'a> = Box<dyn FnOnce() + Send + 'a>;

type StaticJob = Box<dyn FnOnce() + Send + 'static>;

/// Completion report: nanoseconds the worker spent on the job, and whether
/// the job panicked.
struct Done {
    busy_nanos: u64,
    panicked: bool,
}

/// Counters for one [`WorkerPool::run`] batch.
#[derive(Clone, Copy, Default, Debug)]
pub struct BatchStats {
    /// Jobs executed.
    pub jobs: u64,
    /// Sum of per-job execution time across workers, in nanoseconds.
    pub busy_nanos: u64,
    /// Wall-clock time of the whole batch, in nanoseconds.
    pub wall_nanos: u64,
}

/// Long-lived `std::thread` workers fed over channels.
pub struct WorkerPool {
    txs: Vec<Sender<StaticJob>>,
    /// Wrapped in a `Mutex` so the pool is `Sync` (jobs capture references
    /// to structures owning the pool); batches serialize on it.
    done_rx: Mutex<Receiver<Done>>,
    handles: Vec<JoinHandle<()>>,
    /// Measured per-job dispatch + completion overhead, in nanoseconds
    /// (see [`WorkerPool::dispatch_cost_nanos`]).
    dispatch_cost_nanos: u64,
}

/// Jobs per calibration batch (see [`WorkerPool::new`]).
const CALIBRATION_JOBS: usize = 32;
/// Calibration batches; the minimum wall time is kept (scheduling noise
/// only ever inflates a batch, so the minimum is the cleanest estimate).
const CALIBRATION_BATCHES: usize = 3;

impl WorkerPool {
    /// Spawns `n` (≥ 1) workers, then runs a short calibration — a few
    /// batches of empty jobs — to measure this machine's per-job
    /// dispatch cost. The evaluator derives its serial-cutover threshold
    /// from that measurement instead of a hard-coded row count, so the
    /// "too small to parallelize" decision tracks the hardware the pool
    /// actually runs on.
    pub fn new(n: usize) -> WorkerPool {
        let n = n.max(1);
        let (done_tx, done_rx) = channel::<Done>();
        let mut txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = channel::<StaticJob>();
            let done = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("semrec-worker-{i}"))
                .spawn(move || worker_main(rx, done))
                .expect("spawn pool worker");
            txs.push(tx);
            handles.push(handle);
        }
        let mut pool = WorkerPool {
            txs,
            done_rx: Mutex::new(done_rx),
            handles,
            dispatch_cost_nanos: 0,
        };
        let mut best = u64::MAX;
        for _ in 0..CALIBRATION_BATCHES {
            let jobs: Vec<Job<'_>> = (0..CALIBRATION_JOBS)
                .map(|_| Box::new(|| {}) as Job<'_>)
                .collect();
            let stats = pool.run(jobs);
            best = best.min(stats.wall_nanos / CALIBRATION_JOBS as u64);
        }
        pool.dispatch_cost_nanos = best.max(1);
        pool
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Measured cost of dispatching one (empty) job and collecting its
    /// completion, in nanoseconds: the fixed tax a batch pays per job
    /// before any useful work happens. Always ≥ 1.
    pub fn dispatch_cost_nanos(&self) -> u64 {
        self.dispatch_cost_nanos
    }

    /// Runs a batch of jobs on the pool, blocking until all complete.
    /// Jobs are distributed round-robin across workers.
    ///
    /// # Panics
    /// Panics if any job panicked on a worker.
    pub fn run(&self, jobs: Vec<Job<'_>>) -> BatchStats {
        let start = Instant::now();
        let n = jobs.len();
        let mut stats = BatchStats {
            jobs: n as u64,
            ..BatchStats::default()
        };
        let mut any_panicked = false;
        {
            // A poisoned lock only means an *earlier* batch panicked; that
            // batch drained all of its completions before unwinding, so
            // the channel is consistent and the pool stays usable.
            let done_rx = self
                .done_rx
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for (i, job) in jobs.into_iter().enumerate() {
                // Lifetime erasure: sound because this function joins all
                // `n` completions below before returning, so the borrows
                // captured by `job` are still live whenever it runs.
                let job: StaticJob = unsafe {
                    std::mem::transmute::<Job<'_>, StaticJob>(job)
                };
                self.txs[i % self.txs.len()]
                    .send(job)
                    .expect("pool worker exited early");
            }
            for _ in 0..n {
                let done = done_rx
                    .recv()
                    .expect("pool worker exited without reporting");
                stats.busy_nanos += done.busy_nanos;
                any_panicked |= done.panicked;
            }
            // Guard dropped here, *before* the panic below, so the batch
            // lock is never poisoned by a failing job.
        }
        stats.wall_nanos = start.elapsed().as_nanos() as u64;
        assert!(!any_panicked, "worker job panicked");
        stats
    }

    /// Runs a sequence of heterogeneous job batches with a full barrier
    /// between consecutive phases: phase `i + 1` is not dispatched until
    /// every job of phase `i` has completed. This is the evaluator's
    /// two-phase round shape — a join batch producing shard-routed
    /// buffers, then a merge batch with one job per shard — where the
    /// barrier is what makes the per-shard dedup sets safely lock-free.
    ///
    /// Returns one [`BatchStats`] per phase, so callers can attribute
    /// busy time to each phase separately.
    ///
    /// # Panics
    /// Panics if any job panicked. The failing phase is still fully
    /// drained first (every one of its jobs has finished), and no later
    /// phase is ever dispatched.
    pub fn run_phases(&self, phases: Vec<Vec<Job<'_>>>) -> Vec<BatchStats> {
        phases.into_iter().map(|jobs| self.run(jobs)).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels lets the workers' recv loops end.
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_main(rx: Receiver<StaticJob>, done: Sender<Done>) {
    while let Ok(job) = rx.recv() {
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(job));
        let report = Done {
            busy_nanos: start.elapsed().as_nanos() as u64,
            panicked: result.is_err(),
        };
        if done.send(report).is_err() {
            return; // pool gone; nothing left to report to
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn runs_all_jobs_and_blocks_until_done() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Job<'_>> = (0..64)
            .map(|_| {
                let c = &counter;
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Job<'_>
            })
            .collect();
        let stats = pool.run(jobs);
        // run() returning proves every job finished: the borrow of
        // `counter` is only safe because of that guarantee.
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(stats.jobs, 64);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(2);
        for round in 1..=5usize {
            let (tx, rx) = channel();
            let jobs: Vec<Job<'_>> = (0..round)
                .map(|i| {
                    let tx = tx.clone();
                    Box::new(move || tx.send(i).unwrap()) as Job<'_>
                })
                .collect();
            pool.run(jobs);
            drop(tx);
            let mut got: Vec<usize> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn borrows_from_caller_stack_are_visible() {
        let pool = WorkerPool::new(3);
        let data: Vec<u64> = (0..1000).collect();
        let (tx, rx) = channel();
        let jobs: Vec<Job<'_>> = (0..4)
            .map(|w| {
                let tx = tx.clone();
                let data = &data;
                Box::new(move || {
                    let sum: u64 = data.iter().skip(w).step_by(4).sum();
                    tx.send(sum).unwrap();
                }) as Job<'_>
            })
            .collect();
        pool.run(jobs);
        drop(tx);
        let total: u64 = rx.iter().sum();
        assert_eq!(total, 1000 * 999 / 2);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = WorkerPool::new(2);
        let stats = pool.run(Vec::new());
        assert_eq!(stats.jobs, 0);
    }

    #[test]
    #[should_panic(expected = "worker job panicked")]
    fn job_panic_propagates_without_hanging() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Job<'_>> = vec![
            Box::new(|| panic!("boom")),
            Box::new(|| {}),
        ];
        pool.run(jobs);
    }

    #[test]
    fn calibration_measures_dispatch_cost() {
        let pool = WorkerPool::new(2);
        // An empty job still costs a send + a wakeup + a completion recv.
        assert!(pool.dispatch_cost_nanos() >= 1);
        // Sanity: far below a second per job on any machine.
        assert!(pool.dispatch_cost_nanos() < 1_000_000_000);
    }

    #[test]
    fn run_phases_reports_per_phase_stats() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        let phase = |n: usize| -> Vec<Job<'_>> {
            (0..n)
                .map(|_| {
                    let c = &counter;
                    Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    }) as Job<'_>
                })
                .collect()
        };
        let stats = pool.run_phases(vec![phase(5), phase(3), phase(7)]);
        assert_eq!(counter.load(Ordering::SeqCst), 15);
        let jobs: Vec<u64> = stats.iter().map(|s| s.jobs).collect();
        assert_eq!(jobs, vec![5, 3, 7]);
    }

    /// The two-phase contract the sharded merge relies on: every job of
    /// the join phase completes before the merge phase starts, and a
    /// panicking merge job aborts the batch without hanging — after its
    /// own phase drained and without dispatching any later phase.
    #[test]
    fn phase_barrier_holds_under_panicking_merge_job() {
        let pool = WorkerPool::new(4);
        let joins_done = AtomicUsize::new(0);
        let merges_started = AtomicUsize::new(0);
        let late_phase_ran = AtomicUsize::new(0);
        let join_jobs: Vec<Job<'_>> = (0..8)
            .map(|_| {
                let j = &joins_done;
                Box::new(move || {
                    // Stagger completions so a broken barrier would race.
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    j.fetch_add(1, Ordering::SeqCst);
                }) as Job<'_>
            })
            .collect();
        let merge_jobs: Vec<Job<'_>> = (0..4)
            .map(|s| {
                let j = &joins_done;
                let m = &merges_started;
                Box::new(move || {
                    m.fetch_add(1, Ordering::SeqCst);
                    // Barrier assertion: all 8 join jobs already ran.
                    assert_eq!(j.load(Ordering::SeqCst), 8, "merge before join barrier");
                    if s == 1 {
                        panic!("merge shard failure");
                    }
                }) as Job<'_>
            })
            .collect();
        let never: Vec<Job<'_>> = vec![Box::new(|| {
            late_phase_ran.fetch_add(1, Ordering::SeqCst);
        })];
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_phases(vec![join_jobs, merge_jobs, never]);
        }));
        assert!(result.is_err(), "merge panic must propagate");
        assert_eq!(joins_done.load(Ordering::SeqCst), 8);
        // The panicking phase was fully drained (all 4 merge jobs ran,
        // including the ones dispatched after the panicking one)...
        assert_eq!(merges_started.load(Ordering::SeqCst), 4);
        // ...and the phase after the failure never started.
        assert_eq!(late_phase_ran.load(Ordering::SeqCst), 0);
        // The pool survives a panicked batch and stays usable.
        let ok = AtomicUsize::new(0);
        pool.run(vec![Box::new(|| {
            ok.fetch_add(1, Ordering::SeqCst);
        }) as Job<'_>]);
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }
}
