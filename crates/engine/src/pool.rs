//! A persistent worker pool for intra-round parallelism.
//!
//! The evaluator used to spawn a fresh `crossbeam::thread::scope` (and N
//! OS threads) for every rule batch of every fixpoint round; on workloads
//! with many small rounds the spawn/join cost dwarfed the joins being
//! parallelized. This pool spawns its `std::thread` workers **once** and
//! feeds them per-round over channels: a round dispatches a batch of jobs
//! round-robin, then blocks until every job has reported completion.
//!
//! Scoped-borrow safety: jobs may borrow the caller's stack (they capture
//! `&Evaluator`), which is sound for the same reason `std::thread::scope`
//! is — [`WorkerPool::run`] does not return until every dispatched job has
//! completed (or the pool panics), so no borrow outlives the call. The
//! lifetime erasure this requires is confined to [`WorkerPool::run`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::Instant;

/// A unit of work dispatched to a worker. Jobs report results through
/// channels they capture; the pool only tracks completion and busy time.
pub type Job<'a> = Box<dyn FnOnce() + Send + 'a>;

type StaticJob = Box<dyn FnOnce() + Send + 'static>;

/// Completion report: the job's batch index, nanoseconds the worker
/// spent on it, and the panic payload if it panicked.
struct Done {
    job: usize,
    busy_nanos: u64,
    panic: Option<String>,
}

/// A job panicked on a worker. The batch was still fully drained (every
/// job ran to completion or panic) before this was returned, so the
/// pool stays usable and no caller borrow is outstanding.
#[derive(Clone, Debug)]
pub struct JobPanic {
    /// Index of the first panicking job within its batch.
    pub job: usize,
    /// The panic payload, stringified (`&str`/`String` payloads pass
    /// through; anything else becomes a placeholder).
    pub payload: String,
}

/// A job panicked during [`WorkerPool::run_phases`]: a [`JobPanic`]
/// plus which phase it happened in. No phase after `phase` was
/// dispatched.
#[derive(Clone, Debug)]
pub struct PhasePanic {
    /// Index of the failing phase.
    pub phase: usize,
    /// The first panicking job of that phase.
    pub panic: JobPanic,
}

/// Counters for one [`WorkerPool::run`] batch.
#[derive(Clone, Copy, Default, Debug)]
pub struct BatchStats {
    /// Jobs executed.
    pub jobs: u64,
    /// Sum of per-job execution time across workers, in nanoseconds.
    pub busy_nanos: u64,
    /// Wall-clock time of the whole batch, in nanoseconds.
    pub wall_nanos: u64,
}

/// Long-lived `std::thread` workers fed over channels.
pub struct WorkerPool {
    txs: Vec<Sender<(usize, StaticJob)>>,
    /// Wrapped in a `Mutex` so the pool is `Sync` (jobs capture references
    /// to structures owning the pool); batches serialize on it.
    done_rx: Mutex<Receiver<Done>>,
    handles: Vec<JoinHandle<()>>,
    /// Measured per-job dispatch + completion overhead, in nanoseconds
    /// (see [`WorkerPool::dispatch_cost_nanos`]).
    dispatch_cost_nanos: u64,
}

/// Jobs per calibration batch (see [`WorkerPool::new`]).
const CALIBRATION_JOBS: usize = 32;
/// Calibration batches; the minimum wall time is kept (scheduling noise
/// only ever inflates a batch, so the minimum is the cleanest estimate).
const CALIBRATION_BATCHES: usize = 3;

impl WorkerPool {
    /// Spawns `n` (≥ 1) workers, then runs a short calibration — a few
    /// batches of empty jobs — to measure this machine's per-job
    /// dispatch cost. The evaluator derives its serial-cutover threshold
    /// from that measurement instead of a hard-coded row count, so the
    /// "too small to parallelize" decision tracks the hardware the pool
    /// actually runs on.
    pub fn new(n: usize) -> WorkerPool {
        let n = n.max(1);
        let (done_tx, done_rx) = channel::<Done>();
        let mut txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = channel::<(usize, StaticJob)>();
            let done = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("semrec-worker-{i}"))
                .spawn(move || worker_main(rx, done))
                .expect("spawn pool worker");
            txs.push(tx);
            handles.push(handle);
        }
        let mut pool = WorkerPool {
            txs,
            done_rx: Mutex::new(done_rx),
            handles,
            dispatch_cost_nanos: 0,
        };
        let mut best = u64::MAX;
        for _ in 0..CALIBRATION_BATCHES {
            let jobs: Vec<Job<'_>> = (0..CALIBRATION_JOBS)
                .map(|_| Box::new(|| {}) as Job<'_>)
                .collect();
            let stats = pool.run(jobs);
            best = best.min(stats.wall_nanos / CALIBRATION_JOBS as u64);
        }
        pool.dispatch_cost_nanos = best.max(1);
        pool
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Measured cost of dispatching one (empty) job and collecting its
    /// completion, in nanoseconds: the fixed tax a batch pays per job
    /// before any useful work happens. Always ≥ 1.
    pub fn dispatch_cost_nanos(&self) -> u64 {
        self.dispatch_cost_nanos
    }

    /// Runs a batch of jobs on the pool, blocking until all complete.
    /// Jobs are distributed round-robin across workers. A panicking job
    /// is caught on its worker and surfaced as the `Err` variant —
    /// after the whole batch has drained, so the pool (and every borrow
    /// the jobs captured) is back in a consistent state either way.
    pub fn try_run(&self, jobs: Vec<Job<'_>>) -> Result<BatchStats, JobPanic> {
        let start = Instant::now();
        let n = jobs.len();
        let mut stats = BatchStats {
            jobs: n as u64,
            ..BatchStats::default()
        };
        let mut first_panic: Option<JobPanic> = None;
        {
            // A poisoned lock only means an *earlier* batch panicked on
            // the control thread mid-collection; every such batch drains
            // all of its completions before returning, so the channel is
            // consistent and the pool stays usable.
            let done_rx = self
                .done_rx
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for (i, job) in jobs.into_iter().enumerate() {
                // Lifetime erasure: sound because this function joins all
                // `n` completions below before returning, so the borrows
                // captured by `job` are still live whenever it runs.
                let job: StaticJob = unsafe { std::mem::transmute::<Job<'_>, StaticJob>(job) };
                self.txs[i % self.txs.len()]
                    .send((i, job))
                    .expect("pool worker exited early");
            }
            for _ in 0..n {
                let done = done_rx
                    .recv()
                    .expect("pool worker exited without reporting");
                stats.busy_nanos += done.busy_nanos;
                if let Some(payload) = done.panic {
                    // Keep the batch-order-first report for determinism.
                    let first = match &first_panic {
                        None => true,
                        Some(p) => done.job < p.job,
                    };
                    if first {
                        first_panic = Some(JobPanic {
                            job: done.job,
                            payload,
                        });
                    }
                }
            }
        }
        stats.wall_nanos = start.elapsed().as_nanos() as u64;
        match first_panic {
            None => Ok(stats),
            Some(p) => Err(p),
        }
    }

    /// [`WorkerPool::try_run`] for callers with no error path of their
    /// own (calibration, simple fan-outs).
    ///
    /// # Panics
    /// Panics if any job panicked on a worker.
    pub fn run(&self, jobs: Vec<Job<'_>>) -> BatchStats {
        match self.try_run(jobs) {
            Ok(stats) => stats,
            Err(p) => panic!("worker job panicked: job {}: {}", p.job, p.payload),
        }
    }

    /// Runs a sequence of heterogeneous job batches with a full barrier
    /// between consecutive phases: phase `i + 1` is not dispatched until
    /// every job of phase `i` has completed. This is the evaluator's
    /// two-phase round shape — a join batch producing shard-routed
    /// buffers, then a merge batch with one job per shard — where the
    /// barrier is what makes the per-shard dedup sets safely lock-free.
    ///
    /// Returns one [`BatchStats`] per phase, so callers can attribute
    /// busy time to each phase separately. A panicking job surfaces as
    /// the `Err` variant (no `panic!` escalation on the control
    /// thread): the failing phase is still fully drained first (every
    /// one of its jobs has finished), no later phase is ever
    /// dispatched, and the pool remains usable for subsequent batches.
    pub fn run_phases(&self, phases: Vec<Vec<Job<'_>>>) -> Result<Vec<BatchStats>, PhasePanic> {
        let mut out = Vec::with_capacity(phases.len());
        for (i, jobs) in phases.into_iter().enumerate() {
            match self.try_run(jobs) {
                Ok(stats) => out.push(stats),
                Err(panic) => return Err(PhasePanic { phase: i, panic }),
            }
        }
        Ok(out)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels lets the workers' recv loops end.
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_main(rx: Receiver<(usize, StaticJob)>, done: Sender<Done>) {
    while let Ok((job_idx, job)) = rx.recv() {
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(job));
        let report = Done {
            job: job_idx,
            busy_nanos: start.elapsed().as_nanos() as u64,
            panic: result.err().map(|payload| payload_string(payload.as_ref())),
        };
        if done.send(report).is_err() {
            return; // pool gone; nothing left to report to
        }
    }
}

/// Stringifies a caught panic payload: `panic!("...")` payloads are
/// `&str` or `String`; anything else gets a placeholder rather than
/// being dropped.
fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn runs_all_jobs_and_blocks_until_done() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Job<'_>> = (0..64)
            .map(|_| {
                let c = &counter;
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Job<'_>
            })
            .collect();
        let stats = pool.run(jobs);
        // run() returning proves every job finished: the borrow of
        // `counter` is only safe because of that guarantee.
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(stats.jobs, 64);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(2);
        for round in 1..=5usize {
            let (tx, rx) = channel();
            let jobs: Vec<Job<'_>> = (0..round)
                .map(|i| {
                    let tx = tx.clone();
                    Box::new(move || tx.send(i).unwrap()) as Job<'_>
                })
                .collect();
            pool.run(jobs);
            drop(tx);
            let mut got: Vec<usize> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn borrows_from_caller_stack_are_visible() {
        let pool = WorkerPool::new(3);
        let data: Vec<u64> = (0..1000).collect();
        let (tx, rx) = channel();
        let jobs: Vec<Job<'_>> = (0..4)
            .map(|w| {
                let tx = tx.clone();
                let data = &data;
                Box::new(move || {
                    let sum: u64 = data.iter().skip(w).step_by(4).sum();
                    tx.send(sum).unwrap();
                }) as Job<'_>
            })
            .collect();
        pool.run(jobs);
        drop(tx);
        let total: u64 = rx.iter().sum();
        assert_eq!(total, 1000 * 999 / 2);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = WorkerPool::new(2);
        let stats = pool.run(Vec::new());
        assert_eq!(stats.jobs, 0);
    }

    #[test]
    #[should_panic(expected = "worker job panicked")]
    fn job_panic_propagates_without_hanging() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Job<'_>> = vec![Box::new(|| panic!("boom")), Box::new(|| {})];
        pool.run(jobs);
    }

    #[test]
    fn calibration_measures_dispatch_cost() {
        let pool = WorkerPool::new(2);
        // An empty job still costs a send + a wakeup + a completion recv.
        assert!(pool.dispatch_cost_nanos() >= 1);
        // Sanity: far below a second per job on any machine.
        assert!(pool.dispatch_cost_nanos() < 1_000_000_000);
    }

    #[test]
    fn run_phases_reports_per_phase_stats() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        let phase = |n: usize| -> Vec<Job<'_>> {
            (0..n)
                .map(|_| {
                    let c = &counter;
                    Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    }) as Job<'_>
                })
                .collect()
        };
        let stats = pool
            .run_phases(vec![phase(5), phase(3), phase(7)])
            .expect("no job panics");
        assert_eq!(counter.load(Ordering::SeqCst), 15);
        let jobs: Vec<u64> = stats.iter().map(|s| s.jobs).collect();
        assert_eq!(jobs, vec![5, 3, 7]);
    }

    #[test]
    fn try_run_reports_first_panicking_job_and_payload() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Job<'_>> = vec![
            Box::new(|| {}),
            Box::new(|| panic!("first boom")),
            Box::new(|| panic!("second boom {}", 7)),
        ];
        let err = pool.try_run(jobs).expect_err("jobs panicked");
        assert_eq!(err.job, 1, "lowest batch index wins");
        assert_eq!(err.payload, "first boom");
        // A non-string payload is reported, not dropped.
        let jobs: Vec<Job<'_>> = vec![Box::new(|| std::panic::panic_any(42u32))];
        let err = pool.try_run(jobs).expect_err("job panicked");
        assert_eq!(err.payload, "non-string panic payload");
        // The pool is fully usable after caught panics.
        assert_eq!(pool.run(vec![Box::new(|| {}) as Job<'_>]).jobs, 1);
    }

    /// The two-phase contract the sharded merge relies on: every job of
    /// the join phase completes before the merge phase starts, and a
    /// panicking merge job fails the batch as an error return (no
    /// control-thread panic) — after its own phase drained and without
    /// dispatching any later phase.
    #[test]
    fn phase_barrier_holds_under_panicking_merge_job() {
        let pool = WorkerPool::new(4);
        let joins_done = AtomicUsize::new(0);
        let merges_started = AtomicUsize::new(0);
        let late_phase_ran = AtomicUsize::new(0);
        let join_jobs: Vec<Job<'_>> = (0..8)
            .map(|_| {
                let j = &joins_done;
                Box::new(move || {
                    // Stagger completions so a broken barrier would race.
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    j.fetch_add(1, Ordering::SeqCst);
                }) as Job<'_>
            })
            .collect();
        let merge_jobs: Vec<Job<'_>> = (0..4)
            .map(|s| {
                let j = &joins_done;
                let m = &merges_started;
                Box::new(move || {
                    m.fetch_add(1, Ordering::SeqCst);
                    // Barrier assertion: all 8 join jobs already ran.
                    assert_eq!(j.load(Ordering::SeqCst), 8, "merge before join barrier");
                    if s == 1 {
                        panic!("merge shard failure");
                    }
                }) as Job<'_>
            })
            .collect();
        let never: Vec<Job<'_>> = vec![Box::new(|| {
            late_phase_ran.fetch_add(1, Ordering::SeqCst);
        })];
        let err = pool
            .run_phases(vec![join_jobs, merge_jobs, never])
            .expect_err("merge panic must surface as an error");
        assert_eq!(err.phase, 1, "failure attributed to the merge phase");
        assert_eq!(err.panic.job, 1);
        assert_eq!(err.panic.payload, "merge shard failure");
        assert_eq!(joins_done.load(Ordering::SeqCst), 8);
        // The panicking phase was fully drained (all 4 merge jobs ran,
        // including the ones dispatched after the panicking one)...
        assert_eq!(merges_started.load(Ordering::SeqCst), 4);
        // ...and the phase after the failure never started.
        assert_eq!(late_phase_ran.load(Ordering::SeqCst), 0);
        // The pool survives the caught panic and runs a full subsequent
        // two-phase batch — no poisoned worker, channel, or lock.
        let ok = AtomicUsize::new(0);
        let again = |n: usize| -> Vec<Job<'_>> {
            (0..n)
                .map(|_| {
                    let c = &ok;
                    Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    }) as Job<'_>
                })
                .collect()
        };
        let stats = pool
            .run_phases(vec![again(6), again(3)])
            .expect("pool reusable after a caught panic");
        assert_eq!(ok.load(Ordering::SeqCst), 9);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].jobs, 6);
        assert_eq!(stats[1].jobs, 3);
    }
}
