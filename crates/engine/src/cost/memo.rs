//! The plan-alternative memo: enumerated rewrite variants of one query,
//! priced by the estimator, with the cheapest selected as the route.
//!
//! The alternatives themselves come from the semantic optimizer in
//! `semrec-core` (original / rectified / residue-pushed programs, plus a
//! magic-sets variant when a goal directs evaluation); this module only
//! prices and ranks them. Subplans shared between alternatives — the
//! rectified and residue-pushed programs differ in a few body atoms, the
//! rest of their rules are identical — are deduplicated through the
//! [`Estimator`]'s shape cache, and every kernel's dependency-valid
//! probe reorderings are enumerated as part of each estimate (Fejza &
//! Genevès' recursive-plan enumeration, collapsed onto this engine's
//! fixed rule structure).

use super::estimate::{Estimator, ProgramEstimate};
use super::stats::EdbStats;
use crate::database::Database;
use crate::error::EngineError;
use crate::eval::Route;
use semrec_datalog::program::Program;
use std::time::Instant;

/// Which rewrite an alternative is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AlternativeKind {
    /// The program as written.
    Original,
    /// The rectified program (equivalent normal form, no residues).
    Rectified,
    /// The residue-pushed (semantically optimized) program.
    ResiduePushed,
    /// The magic-sets rewriting toward a goal.
    Magic,
}

impl AlternativeKind {
    /// The [`Route`] label evaluation reports when this alternative
    /// answers.
    pub fn route(self) -> Route {
        match self {
            // Magic is goal-directed evaluation of the original rules;
            // both report the program-as-given route.
            AlternativeKind::Original | AlternativeKind::Magic => Route::Direct,
            AlternativeKind::Rectified => Route::RectifiedFallback,
            AlternativeKind::ResiduePushed => Route::Optimized,
        }
    }

    /// Tie-break rank: among cost-indistinguishable alternatives the
    /// residue-pushed program wins (the paper's default), then the
    /// original, then rectified, then magic.
    fn rank(self) -> u8 {
        match self {
            AlternativeKind::ResiduePushed => 0,
            AlternativeKind::Original => 1,
            AlternativeKind::Rectified => 2,
            AlternativeKind::Magic => 3,
        }
    }

    /// Stable lowercase name (JSON / `semrec explain`).
    pub fn name(self) -> &'static str {
        match self {
            AlternativeKind::Original => "original",
            AlternativeKind::Rectified => "rectified",
            AlternativeKind::ResiduePushed => "residue_pushed",
            AlternativeKind::Magic => "magic",
        }
    }
}

impl std::fmt::Display for AlternativeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One priced alternative.
#[derive(Clone, Debug)]
pub struct PlanAlternative {
    /// Which rewrite this is.
    pub kind: AlternativeKind,
    /// The program that would run.
    pub program: Program,
    /// Its estimate.
    pub estimate: ProgramEstimate,
}

/// The memo: every enumerated alternative with its estimate, plus the
/// planning telemetry the bench gates read.
#[derive(Clone, Debug)]
pub struct CostMemo {
    /// Priced alternatives, in enumeration order.
    pub alternatives: Vec<PlanAlternative>,
    /// Rule compilations shared between alternatives (estimator
    /// shape-cache hits).
    pub shared_subplans: u64,
    /// Wall nanoseconds spent estimating all alternatives.
    pub plan_nanos: u64,
}

impl CostMemo {
    /// Prices `alternatives` against `db`'s statistics. Estimation
    /// failures on an individual alternative (e.g. a rewrite produced a
    /// rule the planner rejects) drop that alternative rather than
    /// failing the memo; an error is returned only when *no* alternative
    /// prices.
    pub fn build(
        db: &Database,
        stats: &mut EdbStats,
        alternatives: Vec<(AlternativeKind, Program)>,
    ) -> Result<CostMemo, EngineError> {
        let start = Instant::now();
        let mut est = Estimator::new(db, stats);
        let mut priced = Vec::with_capacity(alternatives.len());
        let mut last_err = None;
        for (kind, program) in alternatives {
            match est.estimate(&program) {
                Ok(estimate) => priced.push(PlanAlternative {
                    kind,
                    program,
                    estimate,
                }),
                Err(e) => last_err = Some(e),
            }
        }
        if priced.is_empty() {
            return Err(last_err.unwrap_or(EngineError::ArityMismatch(
                "cost memo built with no alternatives".to_owned(),
            )));
        }
        Ok(CostMemo {
            alternatives: priced,
            shared_subplans: est.shape_hits,
            plan_nanos: start.elapsed().as_nanos() as u64,
        })
    }

    /// The cheapest alternative by estimated work; estimates within 0.1%
    /// of the minimum tie-break by [`AlternativeKind::rank`], so the
    /// choice is deterministic and prefers the paper's rewrite when cost
    /// cannot distinguish.
    pub fn best(&self) -> &PlanAlternative {
        let min = self
            .alternatives
            .iter()
            .map(|a| a.estimate.work)
            .fold(f64::INFINITY, f64::min);
        self.alternatives
            .iter()
            .filter(|a| a.estimate.work <= min * 1.001 + 1e-9)
            .min_by_key(|a| a.kind.rank())
            .expect("memo is non-empty")
    }

    /// The best alternative *other than* the chosen one (the choice the
    /// router would fall back to), if more than one was enumerated.
    pub fn runner_up(&self) -> Option<&PlanAlternative> {
        let chosen = self.best().kind;
        self.alternatives
            .iter()
            .filter(|a| a.kind != chosen)
            .min_by(|a, b| {
                a.estimate
                    .work
                    .partial_cmp(&b.estimate.work)
                    .expect("estimates are finite")
                    .then(a.kind.rank().cmp(&b.kind.rank()))
            })
    }

    /// The route-choice record evaluation results carry.
    pub fn choice(&self) -> RouteChoice {
        let best = self.best();
        RouteChoice {
            chosen: best.kind,
            predicted_rows: best.estimate.rows,
            predicted_work: best.estimate.work,
            runner_up: self.runner_up().map(|a| (a.kind, a.estimate.work)),
            alternatives: self
                .alternatives
                .iter()
                .map(|a| (a.kind, a.estimate.work, a.estimate.rows))
                .collect(),
            plan_nanos: self.plan_nanos,
        }
    }
}

/// The planner's verdict, carried on [`crate::eval::EvalResult`] and
/// surfaced by `semrec explain` and the bench harness's routing section.
#[derive(Clone, Debug)]
pub struct RouteChoice {
    /// The selected alternative.
    pub chosen: AlternativeKind,
    /// Its estimated fixpoint cardinality (rows).
    pub predicted_rows: f64,
    /// Its estimated cost (cumulative rows touched).
    pub predicted_work: f64,
    /// The next-best alternative and its estimated cost.
    pub runner_up: Option<(AlternativeKind, f64)>,
    /// Every enumerated alternative as `(kind, work, rows)`.
    pub alternatives: Vec<(AlternativeKind, f64, f64)>,
    /// Wall nanoseconds the planning pass took.
    pub plan_nanos: u64,
}

impl RouteChoice {
    /// Misprediction ratio against a measured cardinality:
    /// `max(pred, actual) / min(pred, actual)` (1.0 = exact), infinite
    /// when one side is zero and the other is not.
    pub fn misprediction(&self, actual_rows: u64) -> f64 {
        let (p, a) = (self.predicted_rows, actual_rows as f64);
        if p <= 0.0 && a <= 0.0 {
            return 1.0;
        }
        (p.max(a)) / (p.min(a)).max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::int_tuple;

    fn parse_program(src: &str) -> Result<Program, semrec_datalog::Error> {
        Ok(semrec_datalog::parser::parse_unit(src)?.program())
    }

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert("edge", int_tuple(&[i, i + 1]));
            db.insert("witness", int_tuple(&[i + 1, i + 1]));
        }
        db
    }

    #[test]
    fn memo_prefers_the_cheaper_alternative() {
        // The "optimized" variant drops the witness probe: strictly less
        // work, so the memo must pick it.
        let original = parse_program(
            "reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- edge(X, Z), witness(Z, W), reach(Z, Y).",
        )
        .unwrap();
        let optimized = parse_program(
            "reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- edge(X, Z), reach(Z, Y).",
        )
        .unwrap();
        let db = chain_db(30);
        let mut stats = EdbStats::new();
        let memo = CostMemo::build(
            &db,
            &mut stats,
            vec![
                (AlternativeKind::Rectified, original),
                (AlternativeKind::ResiduePushed, optimized),
            ],
        )
        .unwrap();
        assert_eq!(memo.alternatives.len(), 2);
        let best = memo.best();
        assert_eq!(best.kind, AlternativeKind::ResiduePushed);
        assert!(best.estimate.work <= memo.runner_up().unwrap().estimate.work);
        assert!(
            memo.shared_subplans >= 1,
            "the shared base rule must dedup: {}",
            memo.shared_subplans
        );
        let choice = memo.choice();
        assert_eq!(choice.chosen, AlternativeKind::ResiduePushed);
        assert_eq!(choice.alternatives.len(), 2);
        assert!(choice.plan_nanos > 0);
        assert_eq!(
            choice.runner_up.map(|(k, _)| k),
            Some(AlternativeKind::Rectified)
        );
    }

    #[test]
    fn single_alternative_memo_has_no_runner_up() {
        let prog = parse_program("reach(X, Y) :- edge(X, Y).").unwrap();
        let db = chain_db(3);
        let mut stats = EdbStats::new();
        let memo =
            CostMemo::build(&db, &mut stats, vec![(AlternativeKind::Original, prog)]).unwrap();
        assert!(memo.runner_up().is_none());
        assert_eq!(memo.best().kind, AlternativeKind::Original);
    }

    #[test]
    fn misprediction_ratio_is_symmetric() {
        let c = RouteChoice {
            chosen: AlternativeKind::Original,
            predicted_rows: 200.0,
            predicted_work: 0.0,
            runner_up: None,
            alternatives: Vec::new(),
            plan_nanos: 0,
        };
        assert!((c.misprediction(100) - 2.0).abs() < 1e-9);
        let c2 = RouteChoice {
            predicted_rows: 50.0,
            ..c
        };
        assert!((c2.misprediction(100) - 2.0).abs() < 1e-9);
    }
}
