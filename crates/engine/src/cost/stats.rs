//! EDB statistics for the cost planner, cached per relation generation.
//!
//! Everything here is read off structures the engine already maintains:
//! row counts and arities from the relation headers, distinct-value
//! counts and fanout histograms from the dictionary indexes
//! ([`Relation::key_distribution`] — one pass over group headers, no row
//! data touched), and integer ranges from the index key stores. Each
//! cached entry is stamped with the relation's
//! [`Relation::generation`] at collection time; a later lookup against a
//! mutated relation recollects just that entry, so incremental
//! transactions invalidate exactly the statistics they made stale.

use crate::database::Database;
use crate::fxhash::FxHashMap;
use crate::relation::Relation;
use semrec_datalog::atom::Pred;

/// Per-relation summary statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RelationStats {
    /// Live tuples.
    pub rows: u64,
    /// Column count.
    pub arity: usize,
    /// Estimated resident bytes ([`Relation::estimated_bytes`]).
    pub bytes: u64,
    /// The relation's mutation counter when these numbers were read.
    pub generation: u64,
}

/// Distinct-count / fanout summary of one column subset, read off the
/// dictionary index on those columns.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ColumnGroupStats {
    /// Distinct key tuples.
    pub distinct: u64,
    /// Largest key group (worst-case probe fanout).
    pub max_group: u64,
    /// Mean rows per distinct key (average probe fanout).
    pub mean_fanout: f64,
    /// log2 histogram of group sizes (bucket `i`: sizes in
    /// `[2^i, 2^(i+1))`, last bucket open-ended).
    pub histogram: [usize; 16],
}

/// A cached integer min/max: the stamping generation plus the range
/// (`None` when the column held no integers).
type CachedRange = (u64, Option<(i64, i64)>);

/// The statistics collector: lazily gathered, generation-invalidated
/// summaries of every EDB relation the estimator asks about.
#[derive(Debug, Default)]
pub struct EdbStats {
    rels: FxHashMap<Pred, RelationStats>,
    groups: FxHashMap<(Pred, Vec<usize>), (u64, ColumnGroupStats)>,
    ranges: FxHashMap<(Pred, usize), CachedRange>,
    /// Fresh collections performed (index walks paid).
    pub collected: u64,
    /// Lookups served from a generation-current cache entry.
    pub reused: u64,
    /// Cache entries discarded because the relation mutated.
    pub invalidated: u64,
}

impl EdbStats {
    /// An empty collector.
    pub fn new() -> EdbStats {
        EdbStats::default()
    }

    fn rel(db: &Database, pred: Pred) -> Option<&Relation> {
        db.get(pred)
    }

    /// Row/arity/bytes summary for `pred`, recollected if the relation
    /// mutated since the cached entry was stamped. `None` when the
    /// database has no such relation (the estimator treats it as empty).
    pub fn relation(&mut self, db: &Database, pred: Pred) -> Option<RelationStats> {
        let rel = Self::rel(db, pred)?;
        let generation = rel.generation();
        if let Some(cached) = self.rels.get(&pred) {
            if cached.generation == generation {
                self.reused += 1;
                return Some(*cached);
            }
            self.invalidated += 1;
        }
        let fresh = RelationStats {
            rows: rel.len() as u64,
            arity: rel.arity(),
            bytes: rel.estimated_bytes(),
            generation,
        };
        self.collected += 1;
        self.rels.insert(pred, fresh);
        Some(fresh)
    }

    /// Distinct/fanout statistics for the dictionary index on `cols` of
    /// `pred`, building the index on first ask and recollecting when the
    /// relation mutated. `None` when the relation is absent.
    pub fn group(&mut self, db: &Database, pred: Pred, cols: &[usize]) -> Option<ColumnGroupStats> {
        let rel = Self::rel(db, pred)?;
        let generation = rel.generation();
        let key = (pred, cols.to_vec());
        if let Some((g, cached)) = self.groups.get(&key) {
            if *g == generation {
                self.reused += 1;
                return Some(cached.clone());
            }
            self.invalidated += 1;
        }
        let d = rel.key_distribution(cols);
        let fresh = ColumnGroupStats {
            distinct: d.distinct as u64,
            max_group: d.max_group as u64,
            mean_fanout: d.mean_fanout(),
            histogram: d.histogram,
        };
        self.collected += 1;
        self.groups.insert(key, (generation, fresh.clone()));
        Some(fresh)
    }

    /// Min/max integer value of column `col` of `pred`, read off the
    /// single-column dictionary (cached like [`EdbStats::group`]).
    /// `None` when the relation is absent or the column holds no ints.
    pub fn int_range(&mut self, db: &Database, pred: Pred, col: usize) -> Option<(i64, i64)> {
        let rel = Self::rel(db, pred)?;
        let generation = rel.generation();
        let key = (pred, col);
        if let Some((g, cached)) = self.ranges.get(&key) {
            if *g == generation {
                self.reused += 1;
                return *cached;
            }
            self.invalidated += 1;
        }
        let fresh = rel.column_int_range(col);
        self.collected += 1;
        self.ranges.insert(key, (generation, fresh));
        fresh
    }

    /// Drops every cache entry whose relation has mutated (or vanished)
    /// since collection. Call after applying a transaction batch so the
    /// next estimate pays recollection only for the touched relations.
    pub fn refresh(&mut self, db: &Database) {
        let stale_rel = |pred: &Pred, gen: u64| match Self::rel(db, *pred) {
            Some(rel) => rel.generation() != gen,
            None => true,
        };
        let before = self.rels.len() + self.groups.len() + self.ranges.len();
        self.rels.retain(|p, s| !stale_rel(p, s.generation));
        self.groups.retain(|(p, _), (g, _)| !stale_rel(p, *g));
        self.ranges.retain(|(p, _), (g, _)| !stale_rel(p, *g));
        let after = self.rels.len() + self.groups.len() + self.ranges.len();
        self.invalidated += (before - after) as u64;
    }

    /// Number of live cache entries (all three kinds), for tests.
    pub fn cached_entries(&self) -> usize {
        self.rels.len() + self.groups.len() + self.ranges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::int_tuple;

    fn db_with_edges(pairs: &[(i64, i64)]) -> Database {
        let mut db = Database::new();
        for &(a, b) in pairs {
            db.insert("edge", int_tuple(&[a, b]));
        }
        db
    }

    #[test]
    fn collects_and_reuses_until_generation_changes() {
        let mut db = db_with_edges(&[(1, 2), (1, 3), (2, 3)]);
        let mut stats = EdbStats::new();
        let edge: Pred = "edge".into();

        let r = stats.relation(&db, edge).unwrap();
        assert_eq!(r.rows, 3);
        assert_eq!(r.arity, 2);
        let g = stats.group(&db, edge, &[0]).unwrap();
        assert_eq!(g.distinct, 2);
        assert_eq!(g.max_group, 2);
        assert!((g.mean_fanout - 1.5).abs() < 1e-9);
        assert_eq!(stats.int_range(&db, edge, 1), Some((2, 3)));
        let collected = stats.collected;

        // Same generation: everything served from cache.
        stats.relation(&db, edge).unwrap();
        stats.group(&db, edge, &[0]).unwrap();
        stats.int_range(&db, edge, 1);
        assert_eq!(stats.collected, collected);
        assert_eq!(stats.reused, 3);

        // A mutation invalidates on next lookup.
        db.insert("edge", int_tuple(&[9, 9]));
        let r = stats.relation(&db, edge).unwrap();
        assert_eq!(r.rows, 4);
        let g = stats.group(&db, edge, &[0]).unwrap();
        assert_eq!(g.distinct, 3);
        assert_eq!(stats.int_range(&db, edge, 1), Some((2, 9)));
        assert!(stats.invalidated >= 3);
    }

    #[test]
    fn refresh_drops_only_stale_entries() {
        let mut db = db_with_edges(&[(1, 2)]);
        for i in 0..4 {
            db.insert("node", int_tuple(&[i]));
        }
        let mut stats = EdbStats::new();
        stats.relation(&db, "edge".into()).unwrap();
        stats.relation(&db, "node".into()).unwrap();
        stats.group(&db, "edge".into(), &[0]).unwrap();
        assert_eq!(stats.cached_entries(), 3);

        db.insert("node", int_tuple(&[99]));
        stats.refresh(&db);
        // Only the node entry dropped; edge stats survive untouched.
        assert_eq!(stats.cached_entries(), 2);
        let reused_before = stats.reused;
        stats.relation(&db, "edge".into()).unwrap();
        assert_eq!(stats.reused, reused_before + 1);
    }

    #[test]
    fn missing_relation_is_none() {
        let db = Database::new();
        let mut stats = EdbStats::new();
        assert!(stats.relation(&db, "ghost".into()).is_none());
        assert!(stats.group(&db, "ghost".into(), &[0]).is_none());
        assert!(stats.int_range(&db, "ghost".into(), 0).is_none());
    }
}
