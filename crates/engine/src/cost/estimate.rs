//! Size-bound cardinality estimation over compiled plans.
//!
//! The estimator mirrors the semi-naive evaluator symbolically: it
//! compiles every rule exactly as [`crate::eval::Evaluator`] would (one
//! full plan plus one delta variant per IDB subgoal occurrence, the same
//! size-based join ordering), reduces each compiled plan to a *shape* —
//! seed scan, probe chain with per-probe fanout sources, head projection
//! sources — and then iterates rounds of cheap float arithmetic instead
//! of rounds of joins. Per round, a plan's output is its seed view's
//! cardinality times the product of its probe fanouts (existential
//! probes contribute `min(1, fanout)`: the kernel's first-hit
//! short-circuit); per predicate, totals are capped by the product of
//! per-column domain sizes derived from EDB distinct counts by a
//! monotone propagation fixpoint — the *Size Bound-Adorned Datalog*
//! bound: no predicate can exceed the product of its columns' active
//! domains. Iteration stops when deltas die out or at [`DEPTH_CAP`]
//! rounds, whichever is first.
//!
//! Everything is an upper-bound-flavored estimate: filters, negation,
//! and residual checks multiply by 1.0, and dedup is modeled only
//! through the domain caps. On the gen workloads this lands within a
//! few x of actual cardinalities (asserted within 10x by
//! `tests/cost_agreement.rs`), which is accurate enough to rank rewrite
//! alternatives whose true costs differ by integer factors.

use super::stats::EdbStats;
use crate::database::Database;
use crate::error::EngineError;
use crate::fxhash::FxHashMap;
use crate::plan::{compile_rule_with_sizes, ArgPat, CompiledRule, KernelSrc, Source, Step, View};
use semrec_datalog::atom::Pred;
use semrec_datalog::program::Program;
use semrec_datalog::term::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Maximum simulated fixpoint rounds. Each round is a few dozen float
/// multiplications per plan, so even the cap costs microseconds — it
/// exists to bound estimation of slowly-converging recursions (long
/// chains) whose domain caps are far away.
pub const DEPTH_CAP: u64 = 4096;

/// Clamp on any estimated row count: beyond this the estimate is
/// "effectively unbounded" and iterating further adds no information.
const ROW_CLAMP: f64 = 1e15;

/// Where a head column's values come from, for domain propagation.
#[derive(Clone, Copy, Debug)]
enum DomSrc {
    /// A compile-time constant: domain 1.
    Const,
    /// A column of a scanned predicate: that column's domain.
    Col(Pred, usize),
    /// A computed value (builtin output): domain unknown.
    Unknown,
}

/// One probe of a plan shape.
#[derive(Clone, Debug)]
struct ProbeShape {
    pred: Pred,
    view: View,
    key_cols: Vec<usize>,
    existential: bool,
    /// Bitmask of earlier probe depths this probe's key reads; a probe
    /// reordering is valid only if all dependencies come earlier.
    deps: u64,
    /// Per key column: every `(pred, col)` position the bound variable
    /// occupies across the rule (its join class). The variable's value
    /// universe is the largest distinct count over the class, and the
    /// probe's hit rate is `distinct keys / universe` — the containment
    /// assumption that prices guard subgoals (`experienced(U)`,
    /// `field(T, F)`) below certainty. Empty when the binding source is
    /// unknown (step-machine plans, computed values): hit rate 1.
    key_univ: Vec<Vec<(Pred, usize)>>,
}

/// One compiled plan variant reduced to its estimation-relevant shape.
#[derive(Clone, Debug)]
struct PlanShape {
    seed: Option<(Pred, View, Vec<usize>)>,
    probes: Vec<ProbeShape>,
    head_src: Vec<DomSrc>,
}

/// All plan variants of one rule (mirror of the evaluator's `RulePlans`).
#[derive(Debug)]
struct RuleShapes {
    head_pred: Pred,
    has_deltas: bool,
    full: PlanShape,
    deltas: Vec<PlanShape>,
}

/// Cumulative estimate attributed to one rule.
#[derive(Clone, Debug)]
pub struct RuleEstimate {
    /// The rule's head predicate.
    pub head_pred: Pred,
    /// The rule, printed.
    pub rule: String,
    /// Estimated rows this rule derives over the whole fixpoint
    /// (pre-dedup).
    pub rows: f64,
    /// Estimated cumulative intermediate rows the rule's joins touch.
    pub work: f64,
}

/// The whole-program estimate.
#[derive(Clone, Debug, Default)]
pub struct ProgramEstimate {
    /// Estimated total IDB rows at fixpoint (post-cap).
    pub rows: f64,
    /// Estimated resident bytes of the IDB (`rows × arity × 16`).
    pub bytes: f64,
    /// Estimated cumulative rows touched across all rounds — the cost
    /// metric routes are ranked by.
    pub work: f64,
    /// Simulated rounds to (estimated) fixpoint.
    pub rounds: u64,
    /// True if iteration stopped at [`DEPTH_CAP`] or [`ROW_CLAMP`]
    /// rather than convergence.
    pub capped: bool,
    /// Estimated rows per IDB predicate.
    pub per_pred: BTreeMap<Pred, f64>,
    /// Per-rule breakdown.
    pub per_rule: Vec<RuleEstimate>,
    /// Probe-chain orderings enumerated across the program's kernels
    /// (dependency-valid permutations, compiled order included).
    pub orderings_considered: u64,
    /// Best enumerated ordering's advantage over the compiled order
    /// (compiled work / best work, ≥ 1; 1 = compiled order is optimal).
    pub ordering_gain: f64,
}

/// The estimator: walks programs against one database's statistics.
/// Shapes are cached across [`Estimator::estimate`] calls keyed by the
/// rule's text and its in-body IDB predicates, so rewrite alternatives
/// sharing rules (rectified vs residue-pushed programs differ in a few
/// body atoms) share compilation — the memo's subplan deduplication.
pub struct Estimator<'a> {
    db: &'a Database,
    stats: &'a mut EdbStats,
    shapes: FxHashMap<String, Rc<RuleShapes>>,
    /// Rule compilations served from the shape cache.
    pub shape_hits: u64,
    /// Rule compilations paid.
    pub shape_misses: u64,
}

impl<'a> Estimator<'a> {
    /// An estimator over `db`, reading (and filling) `stats`.
    pub fn new(db: &'a Database, stats: &'a mut EdbStats) -> Estimator<'a> {
        Estimator {
            db,
            stats,
            shapes: FxHashMap::default(),
            shape_hits: 0,
            shape_misses: 0,
        }
    }

    /// Estimates evaluating `program` over the estimator's database.
    pub fn estimate(&mut self, program: &Program) -> Result<ProgramEstimate, EngineError> {
        let arities = program.arities().map_err(EngineError::ArityMismatch)?;
        let idb_preds = program.idb_preds();

        // EDB sizes for the same join-ordering tie-breaks the evaluator
        // uses, so estimated plans are the plans that will actually run.
        let mut sizes: BTreeMap<Pred, usize> = BTreeMap::new();
        for (p, rel) in self.db.iter() {
            sizes.insert(p, rel.len());
        }
        for p in &idb_preds {
            sizes.remove(p);
        }

        let mut rules: Vec<Rc<RuleShapes>> = Vec::with_capacity(program.len());
        for rule in &program.rules {
            rules.push(self.rule_shapes(rule, &idb_preds, &sizes)?);
        }

        // Domain propagation: per-column domain sizes for IDB predicates,
        // a monotone max-fixpoint seeded from EDB distinct counts.
        let mut dom: BTreeMap<(Pred, usize), f64> = BTreeMap::new();
        for p in &idb_preds {
            for c in 0..arities.get(p).copied().unwrap_or(0) {
                dom.insert((*p, c), 0.0);
            }
        }
        for _ in 0..64 {
            let mut changed = false;
            for rs in &rules {
                for (c, src) in rs.full.head_src.iter().enumerate() {
                    let v = self.domain_of(*src, &dom, &idb_preds);
                    let slot = dom.entry((rs.head_pred, c)).or_insert(0.0);
                    if v > *slot {
                        *slot = v;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let cap_of = |p: Pred| -> f64 {
            let arity = arities.get(&p).copied().unwrap_or(0);
            let mut cap = 1.0f64;
            for c in 0..arity {
                let d = dom.get(&(p, c)).copied().unwrap_or(f64::INFINITY);
                if d == 0.0 {
                    return 0.0;
                }
                cap = (cap * d).min(ROW_CLAMP);
            }
            cap
        };
        let caps: BTreeMap<Pred, f64> = idb_preds.iter().map(|&p| (p, cap_of(p))).collect();

        // Round simulation: totals/deltas per IDB predicate, full plans
        // on round 1, delta variants afterwards — the evaluator's
        // schedule, in float arithmetic.
        let mut total: BTreeMap<Pred, f64> = idb_preds.iter().map(|&p| (p, 0.0)).collect();
        let mut delta: BTreeMap<Pred, f64> = total.clone();
        let mut per_rule: Vec<RuleEstimate> = program
            .rules
            .iter()
            .enumerate()
            .map(|(i, r)| RuleEstimate {
                head_pred: rules[i].head_pred,
                rule: r.to_string(),
                rows: 0.0,
                work: 0.0,
            })
            .collect();
        let mut work = 0.0f64;
        let mut rounds = 0u64;
        let mut capped = false;
        loop {
            rounds += 1;
            let mut derived: BTreeMap<Pred, f64> = BTreeMap::new();
            for (i, rs) in rules.iter().enumerate() {
                let variants: Vec<&PlanShape> = if rounds == 1 {
                    vec![&rs.full]
                } else if rs.has_deltas {
                    rs.deltas.iter().collect()
                } else {
                    continue;
                };
                for shape in variants {
                    let (out, w) = self.plan_rows(shape, &total, &delta, &dom);
                    *derived.entry(rs.head_pred).or_insert(0.0) += out;
                    per_rule[i].rows += out;
                    per_rule[i].work += w;
                    work += w;
                }
            }
            let mut max_delta = 0.0f64;
            for (&p, t) in total.iter_mut() {
                let raw = derived.get(&p).copied().unwrap_or(0.0);
                let headroom = (caps.get(&p).copied().unwrap_or(f64::INFINITY) - *t).max(0.0);
                let new = raw.min(headroom).min(ROW_CLAMP - *t).max(0.0);
                delta.insert(p, new);
                *t += new;
                if *t >= ROW_CLAMP {
                    capped = true;
                }
                max_delta = max_delta.max(new);
            }
            if max_delta < 0.5 || !rules.iter().any(|r| r.has_deltas) {
                break;
            }
            if rounds >= DEPTH_CAP {
                capped = true;
                break;
            }
        }

        // Probe-ordering enumeration over the recursive (delta) shapes,
        // priced against the converged state: how much would the best
        // dependency-valid probe permutation save over the compiled one?
        let mut orderings = 0u64;
        let mut gain = 1.0f64;
        for rs in &rules {
            for shape in &rs.deltas {
                let (n, g) = self.orderings_of(shape, &total, &delta, &dom);
                orderings += n;
                gain = gain.max(g);
            }
        }

        let rows: f64 = total.values().sum();
        let bytes: f64 = total
            .iter()
            .map(|(p, t)| t * arities.get(p).copied().unwrap_or(0) as f64)
            .sum::<f64>()
            * std::mem::size_of::<Value>() as f64;
        Ok(ProgramEstimate {
            rows,
            bytes,
            work,
            rounds,
            capped,
            per_pred: total,
            per_rule,
            orderings_considered: orderings,
            ordering_gain: gain,
        })
    }

    /// Compiles one rule's plan variants (or reuses a cached shape).
    fn rule_shapes(
        &mut self,
        rule: &semrec_datalog::rule::Rule,
        idb_preds: &BTreeSet<Pred>,
        sizes: &BTreeMap<Pred, usize>,
    ) -> Result<Rc<RuleShapes>, EngineError> {
        // Shapes depend on the rule text and on which of its body
        // predicates are IDB (that decides views and delta variants) —
        // not on the rest of the program. Alternatives share both.
        let mut key = rule.to_string();
        key.push('|');
        for a in rule.body_atoms() {
            if idb_preds.contains(&a.pred) {
                key.push_str(&a.pred.to_string());
                key.push(',');
            }
        }
        if let Some(rc) = self.shapes.get(&key) {
            self.shape_hits += 1;
            return Ok(rc.clone());
        }
        self.shape_misses += 1;

        // Mirror of the evaluator's per-rule plan construction
        // (batch mode: only IDB subgoals are delta-capable).
        let idb_lits: Vec<usize> = rule
            .body
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                l.as_atom().is_some_and(|a| {
                    idb_preds.contains(&a.pred) && crate::builtins::BuiltinOp::of(a.pred).is_none()
                })
            })
            .map(|(i, _)| i)
            .collect();
        let neg_idb: Vec<usize> = rule
            .body
            .iter()
            .enumerate()
            .filter(|(_, l)| l.as_neg().is_some_and(|a| idb_preds.contains(&a.pred)))
            .map(|(i, _)| i)
            .collect();
        let mut views: BTreeMap<usize, View> = BTreeMap::new();
        for &li in idb_lits.iter().chain(&neg_idb) {
            views.insert(li, View::Total);
        }
        let full = shape_of(&compile_rule_with_sizes(rule, &views, None, sizes)?);
        let mut deltas = Vec::new();
        for (k, &li) in idb_lits.iter().enumerate() {
            let mut v = BTreeMap::new();
            for (j, &lj) in idb_lits.iter().enumerate() {
                v.insert(
                    lj,
                    match j.cmp(&k) {
                        std::cmp::Ordering::Less => View::Total,
                        std::cmp::Ordering::Equal => View::Delta,
                        std::cmp::Ordering::Greater => View::Old,
                    },
                );
            }
            for &lj in &neg_idb {
                v.insert(lj, View::Total);
            }
            deltas.push(shape_of(&compile_rule_with_sizes(
                rule,
                &v,
                Some(li),
                sizes,
            )?));
        }
        let rc = Rc::new(RuleShapes {
            head_pred: rule.head.pred,
            has_deltas: !idb_lits.is_empty(),
            full,
            deltas,
        });
        self.shapes.insert(key, rc.clone());
        Ok(rc)
    }

    fn domain_of(
        &mut self,
        src: DomSrc,
        dom: &BTreeMap<(Pred, usize), f64>,
        idb_preds: &BTreeSet<Pred>,
    ) -> f64 {
        match src {
            DomSrc::Const => 1.0,
            DomSrc::Unknown => f64::INFINITY,
            DomSrc::Col(p, c) => {
                if idb_preds.contains(&p) {
                    dom.get(&(p, c)).copied().unwrap_or(f64::INFINITY)
                } else {
                    self.stats
                        .group(self.db, p, &[c])
                        .map_or(0.0, |g| g.distinct as f64)
                }
            }
        }
    }

    /// Rows visible through `view` of `pred` in the current simulated
    /// state.
    fn view_rows(
        &mut self,
        pred: Pred,
        view: View,
        total: &BTreeMap<Pred, f64>,
        delta: &BTreeMap<Pred, f64>,
    ) -> f64 {
        match total.get(&pred) {
            Some(&t) => match view {
                View::Full | View::Total => t,
                View::Old => (t - delta.get(&pred).copied().unwrap_or(0.0)).max(0.0),
                View::Delta => delta.get(&pred).copied().unwrap_or(0.0),
            },
            // EDB: every view is the full relation.
            None => self
                .stats
                .relation(self.db, pred)
                .map_or(0.0, |r| r.rows as f64),
        }
    }

    /// Distinct values at one (pred, col) position: the propagated
    /// domain for IDB predicates, the dictionary distinct count for EDB.
    fn position_ndv(&mut self, p: Pred, c: usize, dom: &BTreeMap<(Pred, usize), f64>) -> f64 {
        match dom.get(&(p, c)) {
            Some(&d) => d,
            None => self
                .stats
                .group(self.db, p, &[c])
                .map_or(0.0, |g| g.distinct as f64),
        }
    }

    /// Expected rows matched per probe of `pred` keyed on `key_cols`.
    fn probe_fanout(
        &mut self,
        probe: &ProbeShape,
        total: &BTreeMap<Pred, f64>,
        delta: &BTreeMap<Pred, f64>,
        dom: &BTreeMap<(Pred, usize), f64>,
    ) -> f64 {
        let rows = self.view_rows(probe.pred, probe.view, total, delta);
        if rows == 0.0 {
            return 0.0;
        }
        if probe.key_cols.is_empty() {
            return rows; // cross product
        }
        if total.contains_key(&probe.pred) {
            // IDB: no dictionary stats — assume uniform over the key
            // columns' domains (`distinct ≈ min(rows, Π domain)`).
            let mut keys = 1.0f64;
            for &c in &probe.key_cols {
                let d = self
                    .stats
                    .group(self.db, probe.pred, &[c])
                    .map(|g| g.distinct as f64);
                // IDB columns have no index; fall back to rows itself
                // (the most keys the view can have).
                keys = (keys * d.unwrap_or(rows)).min(rows);
            }
            rows / keys.max(1.0)
        } else {
            // EDB: expected matches per probe = rows / max(distinct key
            // tuples, Π per-column universes). The first term is the
            // dictionary's real mean fanout; the second attenuates it by
            // the hit rate — bound values drawn from a universe larger
            // than the resident keys miss proportionally (containment
            // assumption). A column with no join-class info contributes
            // nothing, leaving the plain mean fanout.
            let Some(g) = self.stats.group(self.db, probe.pred, &probe.key_cols) else {
                return 0.0;
            };
            let mut universe = 1.0f64;
            for (i, _) in probe.key_cols.iter().enumerate() {
                let mut u = 0.0f64;
                for &(p, c) in probe.key_univ.get(i).map_or(&[][..], Vec::as_slice) {
                    u = u.max(self.position_ndv(p, c, dom));
                }
                if u > 0.0 {
                    universe = (universe * u).min(ROW_CLAMP);
                }
            }
            rows / (g.distinct as f64).max(universe).max(1.0)
        }
    }

    /// One plan shape's per-round output and work in the given state.
    fn plan_rows(
        &mut self,
        shape: &PlanShape,
        total: &BTreeMap<Pred, f64>,
        delta: &BTreeMap<Pred, f64>,
        dom: &BTreeMap<(Pred, usize), f64>,
    ) -> (f64, f64) {
        let Some((seed_pred, seed_view, seed_key)) = &shape.seed else {
            // No scan at all (fact-like rule body of filters): one row.
            return (1.0, 1.0);
        };
        let mut card = if seed_key.is_empty() {
            self.view_rows(*seed_pred, *seed_view, total, delta)
        } else {
            // Constant-keyed seed: one key group.
            let probe = ProbeShape {
                pred: *seed_pred,
                view: *seed_view,
                key_cols: seed_key.clone(),
                existential: false,
                deps: 0,
                key_univ: Vec::new(),
            };
            self.probe_fanout(&probe, total, delta, dom)
        };
        let mut work = card;
        for probe in &shape.probes {
            let f = self.probe_fanout(probe, total, delta, dom);
            card *= if probe.existential { f.min(1.0) } else { f };
            card = card.min(ROW_CLAMP);
            work = (work + card).min(ROW_CLAMP);
        }
        (card, work)
    }

    /// Enumerates dependency-valid probe permutations of one shape and
    /// prices them in the given state: returns (orderings considered,
    /// compiled-order work / best-order work).
    fn orderings_of(
        &mut self,
        shape: &PlanShape,
        total: &BTreeMap<Pred, f64>,
        delta: &BTreeMap<Pred, f64>,
        dom: &BTreeMap<(Pred, usize), f64>,
    ) -> (u64, f64) {
        let n = shape.probes.len();
        if n < 2 || shape.probes.iter().any(|p| p.deps == u64::MAX) {
            return (u64::from(n >= 1), 1.0);
        }
        let fanouts: Vec<f64> = shape
            .probes
            .iter()
            .map(|p| {
                let f = self.probe_fanout(p, total, delta, dom);
                if p.existential {
                    f.min(1.0)
                } else {
                    f
                }
            })
            .collect();
        // Unit-seed work of an order: Σ prefix products (the fanout
        // *product* is order-invariant; only intermediate sizes differ).
        let work_of = |order: &[usize]| -> f64 {
            let mut card = 1.0f64;
            let mut w = 0.0f64;
            for &i in order {
                card = (card * fanouts[i]).min(ROW_CLAMP);
                w += card;
            }
            w
        };
        let compiled: Vec<usize> = (0..n).collect();
        let compiled_work = work_of(&compiled);
        let mut best = compiled_work;
        let mut count = 0u64;
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut used = 0u64;
        fn rec(
            probes: &[ProbeShape],
            order: &mut Vec<usize>,
            used: &mut u64,
            count: &mut u64,
            best: &mut f64,
            work_of: &dyn Fn(&[usize]) -> f64,
        ) {
            if order.len() == probes.len() {
                *count += 1;
                let w = work_of(order);
                if w < *best {
                    *best = w;
                }
                return;
            }
            for i in 0..probes.len() {
                let bit = 1u64 << i;
                // Valid only once every dependency is already placed.
                if *used & bit != 0 || probes[i].deps & !*used != 0 {
                    continue;
                }
                *used |= bit;
                order.push(i);
                rec(probes, order, used, count, best, work_of);
                order.pop();
                *used &= !bit;
            }
        }
        rec(
            &shape.probes,
            &mut order,
            &mut used,
            &mut count,
            &mut best,
            &work_of,
        );
        (count, compiled_work / best.max(1e-12))
    }
}

/// Reduces a compiled plan to its estimation shape, preferring the
/// batch-kernel form (it carries existential flags and probe-key
/// dependency structure the step list doesn't).
fn shape_of(plan: &CompiledRule) -> PlanShape {
    if let Some(k) = &plan.kernel {
        // Join classes: key (and check) elements sharing a binding
        // source — a seed column or an earlier probe's output column —
        // bind the same variable. Collect every (pred, col) position
        // each variable touches; the largest distinct count over a
        // class is the variable's value universe for hit-rate pricing.
        let src_id = |s: &KernelSrc| match s {
            KernelSrc::Seed(c) => Some((u64::MAX, *c)),
            KernelSrc::Probe(d, c) => Some((*d as u64, *c)),
            _ => None,
        };
        let src_pos = |s: &KernelSrc| match s {
            KernelSrc::Seed(c) => Some((k.seed_pred, *c)),
            KernelSrc::Probe(d, c) => Some((k.probes[*d].pred, *c)),
            _ => None,
        };
        fn bound_cols(p: &crate::plan::KernelProbe) -> Vec<(usize, &KernelSrc)> {
            let mut cols: Vec<(usize, &KernelSrc)> = p
                .key_cols
                .iter()
                .copied()
                .zip(p.key.iter())
                .chain(p.checks.iter().map(|(c, s)| (*c, s)))
                .collect();
            cols.sort_by_key(|(c, _)| *c);
            cols.dedup_by_key(|(c, _)| *c);
            cols
        }
        let mut classes: BTreeMap<(u64, usize), Vec<(Pred, usize)>> = BTreeMap::new();
        for p in &k.probes {
            for (col, s) in bound_cols(p) {
                let Some(id) = src_id(s) else { continue };
                let class = classes.entry(id).or_default();
                for pos in [src_pos(s), Some((p.pred, col))].into_iter().flatten() {
                    if !class.contains(&pos) {
                        class.push(pos);
                    }
                }
            }
        }
        let probes: Vec<ProbeShape> = k
            .probes
            .iter()
            .map(|p| {
                let bound = bound_cols(p);
                ProbeShape {
                    pred: p.pred,
                    view: p.view,
                    key_cols: bound.iter().map(|(c, _)| *c).collect(),
                    existential: p.existential,
                    deps: p
                        .key
                        .iter()
                        .chain(p.checks.iter().map(|(_, s)| s))
                        .filter_map(|s| match s {
                            KernelSrc::Probe(d, _) => Some(*d),
                            _ => None,
                        })
                        .fold(0u64, |m, d| m | (1 << d)),
                    key_univ: bound
                        .iter()
                        .map(|(_, s)| {
                            src_id(s)
                                .and_then(|id| classes.get(&id))
                                .cloned()
                                .unwrap_or_default()
                        })
                        .collect(),
                }
            })
            .collect();
        let head_src = k
            .head
            .iter()
            .map(|s| match s {
                KernelSrc::Const(_) => DomSrc::Const,
                KernelSrc::Seed(c) => DomSrc::Col(k.seed_pred, *c),
                KernelSrc::Probe(d, c) => DomSrc::Col(k.probes[*d].pred, *c),
                KernelSrc::Computed(_) => DomSrc::Unknown,
            })
            .collect();
        return PlanShape {
            seed: Some((k.seed_pred, k.seed_view, k.seed_key_cols.clone())),
            probes,
            head_src,
        };
    }
    // Step-machine plan: scans in step order; no existential detection
    // and no reordering freedom (deps = all-earlier sentinel).
    let mut slot_src: Vec<DomSrc> = vec![DomSrc::Unknown; plan.nslots];
    let mut seed: Option<(Pred, View, Vec<usize>)> = None;
    let mut probes: Vec<ProbeShape> = Vec::new();
    for step in &plan.steps {
        match step {
            Step::Scan(s) => {
                for (i, a) in s.args.iter().enumerate() {
                    if let ArgPat::Bind(sl) = a {
                        slot_src[*sl] = DomSrc::Col(s.pred, i);
                    }
                }
                if seed.is_none() {
                    seed = Some((s.pred, s.view, s.key_cols.clone()));
                } else {
                    probes.push(ProbeShape {
                        pred: s.pred,
                        view: s.view,
                        key_cols: s.key_cols.clone(),
                        existential: false,
                        deps: u64::MAX,
                        key_univ: Vec::new(),
                    });
                }
            }
            Step::Assign(a) => {
                slot_src[a.slot] = match a.from {
                    Source::Const(_) => DomSrc::Const,
                    Source::Slot(s) => slot_src[s],
                };
            }
            Step::Compute(c) => {
                if let Some((_, sl)) = c.bind {
                    slot_src[sl] = DomSrc::Unknown;
                }
            }
            Step::Neg(_) | Step::Filter(_) => {}
        }
    }
    let head_src = plan
        .head
        .iter()
        .map(|s| match s {
            Source::Const(_) => DomSrc::Const,
            Source::Slot(sl) => slot_src[*sl],
        })
        .collect();
    PlanShape {
        seed,
        probes,
        head_src,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::int_tuple;
    use crate::eval::{evaluate, Strategy};

    fn parse_program(src: &str) -> Result<Program, semrec_datalog::Error> {
        Ok(semrec_datalog::parser::parse_unit(src)?.program())
    }

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert("edge", int_tuple(&[i, i + 1]));
        }
        db
    }

    #[test]
    fn chain_closure_estimate_within_bounds() {
        let prog = parse_program(
            "reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- edge(X, Z), reach(Z, Y).",
        )
        .unwrap();
        let db = chain_db(60);
        let mut stats = EdbStats::new();
        let mut est = Estimator::new(&db, &mut stats);
        let e = est.estimate(&prog).unwrap();
        let actual = evaluate(&db, &prog, Strategy::SemiNaive)
            .unwrap()
            .relation("reach")
            .unwrap()
            .len() as f64;
        assert!(!e.capped, "chain closure converges: {e:?}");
        assert!(
            e.rows >= actual / 10.0 && e.rows <= actual * 10.0,
            "estimate {} vs actual {actual} breaches the 10x band",
            e.rows
        );
        assert!(e.work >= e.rows, "work includes at least the output rows");
        assert!(e.rounds > 1 && e.rounds <= DEPTH_CAP);
        assert!(e.bytes > 0.0);
    }

    #[test]
    fn domain_caps_bound_dense_recursion() {
        // Complete digraph on 12 nodes: reach is exactly 12×12 = 144.
        let mut db = Database::new();
        for a in 0..12 {
            for b in 0..12 {
                db.insert("edge", int_tuple(&[a, b]));
            }
        }
        let prog = parse_program(
            "reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- edge(X, Z), reach(Z, Y).",
        )
        .unwrap();
        let mut stats = EdbStats::new();
        let mut est = Estimator::new(&db, &mut stats);
        let e = est.estimate(&prog).unwrap();
        // The cap is the exact answer here; the estimate must respect it.
        assert!(
            (e.rows - 144.0).abs() < 1.0,
            "domain cap should pin the estimate at 144, got {}",
            e.rows
        );
    }

    #[test]
    fn shape_cache_shares_rules_across_alternatives() {
        let p1 = parse_program(
            "reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- edge(X, Z), reach(Z, Y).",
        )
        .unwrap();
        // Same rules plus one extra: the two shared rules must hit.
        let p2 = parse_program(
            "reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- edge(X, Z), reach(Z, Y).\n\
             big(X) :- reach(X, Y).",
        )
        .unwrap();
        let db = chain_db(10);
        let mut stats = EdbStats::new();
        let mut est = Estimator::new(&db, &mut stats);
        est.estimate(&p1).unwrap();
        assert_eq!(est.shape_hits, 0);
        assert_eq!(est.shape_misses, 2);
        est.estimate(&p2).unwrap();
        assert_eq!(est.shape_hits, 2, "shared rules reuse cached shapes");
        assert_eq!(est.shape_misses, 3);
    }

    #[test]
    fn nonrecursive_program_is_one_round() {
        let prog = parse_program("big(X, Y) :- edge(X, Y).").unwrap();
        let db = chain_db(5);
        let mut stats = EdbStats::new();
        let mut est = Estimator::new(&db, &mut stats);
        let e = est.estimate(&prog).unwrap();
        assert_eq!(e.rounds, 1);
        assert!((e.rows - 5.0).abs() < 1e-9);
    }
}
