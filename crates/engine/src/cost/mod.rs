//! Cost-based route planning: EDB statistics, size-bound cardinality
//! estimation over compiled plans, and a plan-alternative memo.
//!
//! The paper's framework assumes pushing semantics (residues, integrity
//! constraints) into recursion always pays; measured end-to-end that is
//! no longer obviously true — the engine's dynamic existential
//! short-circuit captures much of the static rewrite's win, and the
//! optimized-vs-rectified gap on the gen workloads has collapsed to
//! ~1.1–1.25x. This module decides *when* each rewrite pays:
//!
//! - [`stats`] collects per-relation statistics off the EDB — row
//!   counts, per-column-subset distinct counts and fanout histograms
//!   read straight from the dictionary indexes ([`crate::relation::
//!   Relation::key_distribution`], nearly free), and integer value
//!   ranges — cached per [`crate::relation::Relation::generation`] so
//!   incremental transactions invalidate exactly what changed.
//! - [`estimate`] walks compiled plans ([`crate::plan::CompiledRule`],
//!   preferring the [`crate::plan::BatchKernel`] shape when present)
//!   and simulates the semi-naive fixpoint round by round: each rule's
//!   per-round output is its seed cardinality times the product of
//!   probe fanouts, per-predicate totals are capped by column-domain
//!   products derived by a monotone domain-propagation fixpoint (the
//!   *Size Bound-Adorned Datalog* idea: size bounds from EDB statistics
//!   plus rule shape), and iteration stops at a depth cap. The result
//!   is a per-program estimate in rows, bytes, and cumulative work.
//! - [`memo`] holds the enumerated rewrite alternatives (original /
//!   rectified / residue-pushed / magic), deduplicates shared subplans
//!   through the estimator's shape cache, enumerates valid probe-chain
//!   reorderings within a kernel, and selects the cheapest route.
//!
//! The `semrec-core` crate plugs this into the governed evaluation
//! entry points: the route ladder's *order* is gone — the route is
//! whatever alternative the memo prices cheapest, with the runner-up
//! recorded in [`RouteChoice`] for `semrec explain` and the bench
//! harness's predicted-vs-actual routing section.

pub mod estimate;
pub mod memo;
pub mod stats;

pub use estimate::{Estimator, ProgramEstimate, RuleEstimate, DEPTH_CAP};
pub use memo::{AlternativeKind, CostMemo, PlanAlternative, RouteChoice};
pub use stats::{ColumnGroupStats, EdbStats, RelationStats};
