//! Magic-sets rewriting for goal-directed bottom-up evaluation.
//!
//! The paper positions its transformation as the semantic analogue of magic
//! sets ("just as the magic sets method pushes the goal selectivity of
//! queries inside recursion, our approach tries to push the semantics (in
//! ICs) inside the recursion", §6). Experiment E7 composes the two: a
//! semantically optimized program can be magic-rewritten afterwards, since
//! both are source-to-source transformations.
//!
//! This is the classic generalized-magic-sets construction with a
//! left-to-right sideways-information-passing strategy over the source
//! literal order. Comparisons participate in binding propagation (an `=`
//! with one bound side binds the other); comparisons whose variables are
//! not bound at a magic-rule cut point are dropped from the magic rule
//! (sound: magic predicates may over-approximate relevance).

use crate::database::Database;
use crate::error::EngineError;
use crate::eval::{answer_goal, evaluate, EvalResult, Strategy};
use crate::relation::Tuple;
use semrec_datalog::atom::{Atom, Pred};
use semrec_datalog::literal::{CmpOp, Literal};
use semrec_datalog::program::Program;
use semrec_datalog::rule::Rule;
use semrec_datalog::symbol::Symbol;
use semrec_datalog::term::Term;
use std::collections::{BTreeSet, VecDeque};

/// A binding-pattern adornment: one entry per argument position.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Adornment(pub Vec<bool>);

impl Adornment {
    /// Renders as the usual `bf…` string.
    pub fn as_string(&self) -> String {
        self.0.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
    }

    /// The adornment of `atom` given a set of bound variables.
    pub fn of(atom: &Atom, bound: &BTreeSet<Symbol>) -> Adornment {
        Adornment(
            atom.args
                .iter()
                .map(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                })
                .collect(),
        )
    }

    /// True if no argument is bound.
    pub fn all_free(&self) -> bool {
        self.0.iter().all(|&b| !b)
    }
}

/// The output of the rewriting.
#[derive(Clone, Debug)]
pub struct MagicProgram {
    /// The rewritten program (adorned rules + magic rules + seed fact).
    pub program: Program,
    /// The adorned predicate holding the query's answers.
    pub answer_pred: Pred,
}

fn adorned_pred(p: Pred, a: &Adornment) -> Pred {
    Pred::new(&format!("{}@{}", p.name(), a.as_string()))
}

fn magic_pred(p: Pred, a: &Adornment) -> Pred {
    Pred::new(&format!("m@{}@{}", p.name(), a.as_string()))
}

/// The magic atom for `atom` under adornment `a`: the bound-position
/// arguments only.
fn magic_atom(atom: &Atom, a: &Adornment) -> Atom {
    let args: Vec<Term> = atom
        .args
        .iter()
        .zip(&a.0)
        .filter(|(_, &b)| b)
        .map(|(&t, _)| t)
        .collect();
    Atom::new(magic_pred(atom.pred, a), args)
}

/// Rewrites `program` for the goal atom `goal` (constants mark bound
/// positions). Returns the rewritten program; evaluate it and read
/// [`MagicProgram::answer_pred`].
pub fn magic_rewrite(program: &Program, goal: &Atom) -> Result<MagicProgram, EngineError> {
    let idb = program.idb_preds();
    if program
        .rules
        .iter()
        .any(|r| r.body.iter().any(|l| l.as_neg().is_some()))
    {
        return Err(EngineError::ArityMismatch(
            "magic-sets rewriting does not support negated subgoals".into(),
        ));
    }
    if !idb.contains(&goal.pred) {
        return Err(EngineError::ArityMismatch(format!(
            "query predicate {} is not defined by the program",
            goal.pred
        )));
    }

    let goal_adornment = Adornment(
        goal.args
            .iter()
            .map(|t| matches!(t, Term::Const(_)))
            .collect(),
    );

    let mut out_rules: Vec<Rule> = Vec::new();

    // Seed: magic fact for the query's bound constants. An all-free goal
    // still gets a zero-arity magic seed so adorned rules are guarded
    // uniformly.
    let seed_args: Vec<Term> = goal
        .args
        .iter()
        .zip(&goal_adornment.0)
        .filter(|(_, &b)| b)
        .map(|(&t, _)| t)
        .collect();
    out_rules.push(Rule::fact(Atom::new(
        magic_pred(goal.pred, &goal_adornment),
        seed_args,
    )));

    let mut seen: BTreeSet<(Pred, Adornment)> = BTreeSet::new();
    let mut queue: VecDeque<(Pred, Adornment)> = VecDeque::new();
    seen.insert((goal.pred, goal_adornment.clone()));
    queue.push_back((goal.pred, goal_adornment.clone()));

    while let Some((p, adornment)) = queue.pop_front() {
        for ri in program.rules_for(p) {
            let rule = &program.rules[ri];
            let mut bound: BTreeSet<Symbol> = rule
                .head
                .args
                .iter()
                .zip(&adornment.0)
                .filter(|(_, &b)| b)
                .filter_map(|(t, _)| t.as_var())
                .collect();

            let guard = magic_atom(&rule.head, &adornment);
            let mut new_body: Vec<Literal> = vec![Literal::Atom(guard)];

            for lit in &sips_order(rule, &bound) {
                match lit {
                    Literal::Neg(_) => unreachable!("negation rejected upfront"),
                    Literal::Cmp(c) => {
                        new_body.push(lit.clone());
                        // `=` propagates bindings.
                        if c.op == CmpOp::Eq {
                            let lb = match c.lhs {
                                Term::Const(_) => true,
                                Term::Var(v) => bound.contains(&v),
                            };
                            let rb = match c.rhs {
                                Term::Const(_) => true,
                                Term::Var(v) => bound.contains(&v),
                            };
                            if lb {
                                if let Term::Var(v) = c.rhs {
                                    bound.insert(v);
                                }
                            }
                            if rb {
                                if let Term::Var(v) = c.lhs {
                                    bound.insert(v);
                                }
                            }
                        }
                    }
                    Literal::Atom(a) if !idb.contains(&a.pred) => {
                        new_body.push(lit.clone());
                        bound.extend(a.vars());
                    }
                    Literal::Atom(a) => {
                        let sub_adornment = Adornment::of(a, &bound);
                        // Magic rule: relevance of the subgoal's bindings.
                        let m_head = magic_atom(a, &sub_adornment);
                        let prefix = safe_prefix(&new_body, &bound);
                        out_rules.push(Rule::new(m_head, prefix));
                        if seen.insert((a.pred, sub_adornment.clone())) {
                            queue.push_back((a.pred, sub_adornment.clone()));
                        }
                        // Replace the subgoal by its adorned version.
                        let mut renamed = a.clone();
                        renamed.pred = adorned_pred(a.pred, &sub_adornment);
                        new_body.push(Literal::Atom(renamed));
                        bound.extend(a.vars());
                    }
                }
            }

            let mut new_head = rule.head.clone();
            new_head.pred = adorned_pred(p, &adornment);
            out_rules.push(Rule::new(new_head, new_body));
        }
    }

    Ok(MagicProgram {
        program: Program::new(out_rules),
        answer_pred: adorned_pred(goal.pred, &goal_adornment),
    })
}

/// Bound-first sideways information passing: orders a rule's body so that
/// comparisons run as soon as their variables are bound and the next atom
/// to process is the one with the most bound argument positions (ties by
/// source order). This is what makes binding propagation effective for
/// rules whose recursive subgoal precedes the binding-producing atoms
/// (e.g. left-linear `anc` queried with the ancestor bound).
fn sips_order(rule: &Rule, head_bound: &BTreeSet<Symbol>) -> Vec<Literal> {
    let mut bound = head_bound.clone();
    let mut remaining: Vec<usize> = (0..rule.body.len()).collect();
    let mut out = Vec::with_capacity(rule.body.len());
    while !remaining.is_empty() {
        // Drain runnable comparisons first.
        let mut progressed = true;
        while progressed {
            progressed = false;
            remaining.retain(|&i| {
                let Literal::Cmp(c) = &rule.body[i] else {
                    return true;
                };
                let lb = match c.lhs {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(&v),
                };
                let rb = match c.rhs {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(&v),
                };
                let runnable = (lb && rb) || (c.op == CmpOp::Eq && (lb || rb));
                if runnable {
                    if let Term::Var(v) = c.lhs {
                        bound.insert(v);
                    }
                    if let Term::Var(v) = c.rhs {
                        bound.insert(v);
                    }
                    out.push(rule.body[i].clone());
                    progressed = true;
                    false
                } else {
                    true
                }
            });
        }
        // Pick the atom with the most bound argument positions.
        let best = remaining
            .iter()
            .filter(|&&i| rule.body[i].as_atom().is_some())
            .max_by_key(|&&i| {
                let a = rule.body[i].as_atom().unwrap();
                let n = a
                    .args
                    .iter()
                    .filter(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => bound.contains(v),
                    })
                    .count();
                (n, usize::MAX - i)
            })
            .copied();
        match best {
            Some(i) => {
                let a = rule.body[i].as_atom().unwrap();
                bound.extend(a.vars());
                out.push(rule.body[i].clone());
                remaining.retain(|&j| j != i);
            }
            None => {
                // Only unrunnable comparisons remain; emit them verbatim.
                for &i in &remaining {
                    out.push(rule.body[i].clone());
                }
                break;
            }
        }
    }
    out
}

/// Filters a magic-rule body prefix down to literals whose variables are
/// all bound (atoms always qualify — their scan binds their variables;
/// comparisons with unbound variables are dropped).
fn safe_prefix(body: &[Literal], _bound: &BTreeSet<Symbol>) -> Vec<Literal> {
    let mut have: BTreeSet<Symbol> = BTreeSet::new();
    let mut out = Vec::new();
    for lit in body {
        match lit {
            Literal::Neg(_) => unreachable!("negation rejected upfront"),
            Literal::Atom(a) => {
                have.extend(a.vars());
                out.push(lit.clone());
            }
            Literal::Cmp(c) => {
                let ok = c.vars().all(|v| have.contains(&v));
                if ok {
                    out.push(lit.clone());
                } else if c.op == CmpOp::Eq {
                    // Keep binding equalities (one side bound).
                    let lb = match c.lhs {
                        Term::Const(_) => true,
                        Term::Var(v) => have.contains(&v),
                    };
                    let rb = match c.rhs {
                        Term::Const(_) => true,
                        Term::Var(v) => have.contains(&v),
                    };
                    if lb || rb {
                        if let Term::Var(v) = c.lhs {
                            have.insert(v);
                        }
                        if let Term::Var(v) = c.rhs {
                            have.insert(v);
                        }
                        out.push(lit.clone());
                    }
                }
            }
        }
    }
    out
}

/// Rewrites, evaluates, and extracts the answers to `goal`.
pub fn evaluate_query(
    db: &Database,
    program: &Program,
    goal: &Atom,
    strategy: Strategy,
) -> Result<(Vec<Tuple>, EvalResult), EngineError> {
    let magic = magic_rewrite(program, goal)?;
    let result = evaluate(db, &magic.program, strategy)?;
    let mut answers: Vec<Tuple> = result
        .relation(magic.answer_pred)
        .map(|rel| answer_goal(rel, goal, rel.all_rows()))
        .unwrap_or_default();
    answers.sort();
    answers.dedup();
    Ok((answers, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::int_tuple;
    use semrec_datalog::parser::parse_atom;

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert("e", int_tuple(&[i, i + 1]));
        }
        db
    }

    fn tc() -> Program {
        "t(X,Y) :- e(X,Y). t(X,Y) :- e(X,Z), t(Z,Y)."
            .parse()
            .unwrap()
    }

    #[test]
    fn bound_first_argument() {
        let db = chain_db(20);
        // Binding the start to a late chain node makes only the suffix
        // relevant; magic evaluation must materialize far fewer tuples than
        // the full closure (20·21/2 = 210).
        let goal = parse_atom("t(15, Y)").unwrap();
        let (answers, res) = evaluate_query(&db, &tc(), &goal, Strategy::SemiNaive).unwrap();
        assert_eq!(answers.len(), 5);
        let full = evaluate(&db, &tc(), Strategy::SemiNaive).unwrap();
        let magic_tuples: usize = res.idb.values().map(|r| r.len()).sum();
        assert!(magic_tuples < full.relation("t").unwrap().len() / 4);
    }

    #[test]
    fn fully_bound_goal() {
        let db = chain_db(10);
        let goal = parse_atom("t(2, 7)").unwrap();
        let (answers, _) = evaluate_query(&db, &tc(), &goal, Strategy::SemiNaive).unwrap();
        assert_eq!(answers, vec![int_tuple(&[2, 7])]);
        let goal = parse_atom("t(7, 2)").unwrap();
        let (answers, _) = evaluate_query(&db, &tc(), &goal, Strategy::SemiNaive).unwrap();
        assert!(answers.is_empty());
    }

    #[test]
    fn all_free_goal_equals_full_evaluation() {
        let db = chain_db(8);
        let goal = parse_atom("t(X, Y)").unwrap();
        let (mut answers, _) = evaluate_query(&db, &tc(), &goal, Strategy::SemiNaive).unwrap();
        answers.sort();
        let full = evaluate(&db, &tc(), Strategy::SemiNaive).unwrap();
        assert_eq!(answers, full.relation("t").unwrap().sorted_tuples());
    }

    #[test]
    fn right_linear_bound_head() {
        let db = chain_db(12);
        let p: Program = "t(X,Y) :- e(X,Y). t(X,Y) :- t(X,Z), e(Z,Y)."
            .parse()
            .unwrap();
        let goal = parse_atom("t(3, Y)").unwrap();
        let (answers, _) = evaluate_query(&db, &p, &goal, Strategy::SemiNaive).unwrap();
        assert_eq!(answers.len(), 9);
    }

    #[test]
    fn comparisons_pass_bindings() {
        let db = chain_db(10);
        let p: Program =
            "big(X, Y) :- t(X, Y), Y >= 8. t(X,Y) :- e(X,Y). t(X,Y) :- e(X,Z), t(Z,Y)."
                .parse()
                .unwrap();
        let goal = parse_atom("big(0, Y)").unwrap();
        let (answers, _) = evaluate_query(&db, &p, &goal, Strategy::SemiNaive).unwrap();
        assert_eq!(answers.len(), 3); // 8, 9, 10
    }

    #[test]
    fn non_idb_goal_is_rejected() {
        let db = chain_db(3);
        let goal = parse_atom("e(0, Y)").unwrap();
        assert!(evaluate_query(&db, &tc(), &goal, Strategy::SemiNaive).is_err());
    }

    #[test]
    fn bound_first_sips_helps_left_linear_queries() {
        // Left-linear closure queried with the *second* argument bound:
        // left-to-right SIPS would adorn the recursive subgoal ff and
        // explore everything; bound-first processes e(Z, Y) first and
        // propagates the binding into the recursion.
        let db = chain_db(40);
        let p: Program = "t(X,Y) :- e(X,Y). t(X,Y) :- t(X,Z), e(Z,Y)."
            .parse()
            .unwrap();
        let goal = parse_atom("t(X, 5)").unwrap();
        let (answers, res) = evaluate_query(&db, &p, &goal, Strategy::SemiNaive).unwrap();
        assert_eq!(answers.len(), 5);
        let full = evaluate(&db, &p, Strategy::SemiNaive).unwrap();
        let magic_tuples: usize = res.idb.values().map(|r| r.len()).sum();
        assert!(
            magic_tuples < full.relation("t").unwrap().len() / 10,
            "magic explored {magic_tuples} tuples"
        );
    }

    #[test]
    fn repeated_var_goal_filters() {
        let mut db = chain_db(5);
        db.insert("e", int_tuple(&[3, 3]));
        let goal = parse_atom("t(X, X)").unwrap();
        let (answers, _) = evaluate_query(&db, &tc(), &goal, Strategy::SemiNaive).unwrap();
        assert_eq!(answers, vec![int_tuple(&[3, 3])]);
    }
}
