//! The write-ahead transaction log: fsync-on-commit durability with
//! torn-write detection.
//!
//! ## Format
//!
//! A WAL is a sequence of framed records:
//!
//! ```text
//! [len: u32 LE][checksum: u64 LE][payload: len bytes]
//! ```
//!
//! The payload is the transaction rendered in the same
//! `+fact./-fact./commit.` line format the live stream uses
//! ([`semrec_engine::tx_to_stream`]) — a WAL is `cat`-inspectable and
//! replays through the very parser that accepted the original stream.
//! The checksum is the workspace FxHash over the payload bytes.
//!
//! ## Crash discipline
//!
//! A record is appended and `fdatasync`ed **before** the commit is
//! acknowledged, so the set of acknowledged transactions is always a
//! prefix of the log. On replay:
//!
//! * an *incomplete* trailing frame (fewer bytes than the header, or
//!   than the header's declared length) is a **torn write** — the crash
//!   interrupted an unacknowledged append. It is detected, truncated
//!   away, and replay succeeds with the acknowledged prefix;
//! * a *complete* frame that fails verification (checksum mismatch,
//!   absurd length, non-UTF-8 payload) is **corruption** of acknowledged
//!   history, and replay refuses with [`ServeError::WalCorrupt`] —
//!   silently skipping it would serve answers that diverge from what
//!   clients were told was committed.
//!
//! A failed live append (injected `wal.append`/`wal.fsync` fault or a
//! real I/O error) truncates the log back to its pre-append length so
//! the file never carries a half-written record into the next commit;
//! if even that truncation fails the log is poisoned and every later
//! commit is refused, rather than risking an inconsistent tail.

use crate::error::ServeError;
use semrec_engine::fxhash::FxHasher;
use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Frame header bytes: u32 length + u64 checksum.
const HEADER: usize = 12;

/// Upper bound on a single record's payload. The writer never emits
/// more (a transaction is bounded by the request size); a length above
/// this in the log can only be corruption.
pub const MAX_RECORD: u32 = 1 << 26;

/// FxHash over raw bytes — the record checksum.
fn checksum(payload: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(payload);
    h.finish()
}

/// What [`Wal::open`] recovered from an existing log.
#[derive(Clone, Debug, Default)]
pub struct Replay {
    /// The surviving records' payloads, in append order.
    pub records: Vec<String>,
    /// Set when a torn trailing frame was detected: the byte offset the
    /// log was truncated back to.
    pub truncated_tail: Option<u64>,
}

/// An append-only write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
    poisoned: bool,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replaying and
    /// verifying every record. A torn trailing frame is truncated away
    /// and reported in the [`Replay`]; verified corruption of a
    /// complete record fails with [`ServeError::WalCorrupt`].
    pub fn open(path: &Path) -> Result<(Wal, Replay), ServeError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| ServeError::Io(format!("{}: {e}", path.display())))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| ServeError::Io(format!("{}: {e}", path.display())))?;
        let mut replay = Replay::default();
        let mut off = 0usize;
        while off < bytes.len() {
            let remaining = bytes.len() - off;
            if remaining < HEADER {
                replay.truncated_tail = Some(off as u64);
                break;
            }
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
            let sum = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().expect("8 bytes"));
            if len > MAX_RECORD {
                return Err(ServeError::WalCorrupt {
                    offset: off as u64,
                    detail: format!("record length {len} exceeds maximum {MAX_RECORD}"),
                });
            }
            if remaining < HEADER + len as usize {
                replay.truncated_tail = Some(off as u64);
                break;
            }
            let payload = &bytes[off + HEADER..off + HEADER + len as usize];
            if checksum(payload) != sum {
                return Err(ServeError::WalCorrupt {
                    offset: off as u64,
                    detail: "checksum mismatch on a complete record".to_string(),
                });
            }
            let text = std::str::from_utf8(payload).map_err(|_| ServeError::WalCorrupt {
                offset: off as u64,
                detail: "payload is not valid UTF-8".to_string(),
            })?;
            replay.records.push(text.to_string());
            off += HEADER + len as usize;
        }
        if let Some(keep) = replay.truncated_tail {
            file.set_len(keep).map_err(|e| {
                ServeError::Io(format!("{}: truncating torn tail: {e}", path.display()))
            })?;
            file.sync_data()
                .map_err(|e| ServeError::Io(format!("{}: {e}", path.display())))?;
            off = keep as usize;
        }
        file.seek(SeekFrom::Start(off as u64))
            .map_err(|e| ServeError::Io(e.to_string()))?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                len: off as u64,
                poisoned: false,
            },
            replay,
        ))
    }

    /// Current log length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one commit record and fsyncs it. On any failure —
    /// injected `wal.append`/`wal.fsync` fault or real I/O error — the
    /// log is rolled back to its pre-append length (or poisoned if the
    /// rollback itself fails) and the error is returned; the commit
    /// must then be rejected, not applied.
    pub fn append_commit(&mut self, payload: &str) -> Result<(), ServeError> {
        let pre = self.len;
        self.append_record(payload)?;
        if let Err(e) = self.sync() {
            self.rollback_to(pre);
            return Err(e);
        }
        Ok(())
    }

    /// Appends one record **without** fsyncing it — the group-commit
    /// building block. The record is not durable until a later
    /// [`Wal::sync`] succeeds. On failure (injected `wal.append` fault
    /// or real I/O error) any partial frame is scrubbed so the next
    /// append starts on a clean record boundary; only this record is
    /// lost, earlier un-synced records in the batch survive.
    pub fn append_record(&mut self, payload: &str) -> Result<(), ServeError> {
        if self.poisoned {
            return Err(ServeError::WalCorrupt {
                offset: self.len,
                detail: "log poisoned by an earlier failed rollback".to_string(),
            });
        }
        let pre = self.len;
        match self.try_append(payload.as_bytes()) {
            Ok(()) => {
                self.len = pre + (HEADER + payload.len()) as u64;
                Ok(())
            }
            Err(e) => {
                // Scrub any partial frame so the next append starts on
                // a clean record boundary.
                if self.file.set_len(pre).is_err() || self.file.seek(SeekFrom::Start(pre)).is_err()
                {
                    self.poisoned = true;
                } else {
                    let _ = self.file.sync_data();
                }
                Err(e)
            }
        }
    }

    /// Fsyncs everything appended so far — the single durability point
    /// of a commit batch. The caller decides how to react to a failure
    /// (a single commit rolls back its record; a batch truncates back
    /// to its start), so this does **not** change the log length.
    pub fn sync(&mut self) -> Result<(), ServeError> {
        if self.poisoned {
            return Err(ServeError::WalCorrupt {
                offset: self.len,
                detail: "log poisoned by an earlier failed rollback".to_string(),
            });
        }
        #[cfg(feature = "failpoints")]
        semrec_engine::failpoint::hit("wal.fsync")
            .map_err(|m| ServeError::Io(format!("wal fsync: {m}")))?;
        self.file
            .sync_data()
            .map_err(|e| ServeError::Io(format!("{}: {e}", self.path.display())))
    }

    /// Truncates the log back to `len` — the commit pipeline's undo for
    /// a record whose transaction failed to apply (the record was never
    /// acknowledged, and it is by construction the last one). Poisons
    /// the log if the truncation fails.
    pub fn rollback_to(&mut self, len: u64) {
        debug_assert!(len <= self.len);
        if self.file.set_len(len).is_err() || self.file.seek(SeekFrom::Start(len)).is_err() {
            self.poisoned = true;
            return;
        }
        let _ = self.file.sync_data();
        self.len = len;
    }

    fn try_append(&mut self, payload: &[u8]) -> Result<(), ServeError> {
        #[cfg(feature = "failpoints")]
        semrec_engine::failpoint::hit("wal.append")
            .map_err(|m| ServeError::Io(format!("wal append: {m}")))?;
        assert!(
            payload.len() as u64 <= MAX_RECORD as u64,
            "record too large"
        );
        let mut frame = Vec::with_capacity(HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&checksum(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .map_err(|e| ServeError::Io(format!("{}: {e}", self.path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("semrec-wal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let path = tmp("roundtrip");
        {
            let (mut wal, replay) = Wal::open(&path).unwrap();
            assert!(replay.records.is_empty());
            wal.append_commit("+e(1, 2).\ncommit.\n").unwrap();
            wal.append_commit("-e(1, 2).\ncommit.\n").unwrap();
        }
        let (wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(replay.records[0].starts_with("+e"));
        assert!(replay.records[1].starts_with("-e"));
        assert!(replay.truncated_tail.is_none());
        assert!(!wal.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp("torn");
        let full_len;
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append_commit("+e(1, 2).\ncommit.\n").unwrap();
            wal.append_commit("+e(2, 3).\ncommit.\n").unwrap();
            full_len = wal.len();
            // Simulate a torn append: drop the tail of the last record.
            wal.file.set_len(full_len - 5).unwrap();
        }
        let (wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 1, "torn record dropped");
        assert!(replay.truncated_tail.is_some());
        assert!(wal.len() < full_len);
        // Reopening again is clean: the tail is gone for good.
        drop(wal);
        let (_, replay2) = Wal::open(&path).unwrap();
        assert_eq!(replay2.records.len(), 1);
        assert!(replay2.truncated_tail.is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_file_corruption_is_typed_wal_corrupt() {
        let path = tmp("corrupt");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append_commit("+e(1, 2).\ncommit.\n").unwrap();
            wal.append_commit("+e(2, 3).\ncommit.\n").unwrap();
        }
        // Flip a payload byte of the *first* record: complete frame,
        // bad checksum.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        match Wal::open(&path) {
            Err(ServeError::WalCorrupt { offset, .. }) => assert_eq!(offset, 0),
            other => panic!("expected WalCorrupt, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn absurd_length_is_corrupt_not_torn() {
        let path = tmp("badlen");
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(&0u64.to_le_bytes());
        frame.extend_from_slice(b"xx");
        std::fs::write(&path, &frame).unwrap();
        assert!(matches!(
            Wal::open(&path),
            Err(ServeError::WalCorrupt { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }
}
