//! # semrec-serve
//!
//! The serving daemon behind `semrec serve`: a long-running process
//! holding a [`Database`](semrec_engine::Database) plus a
//! `MaintainedQuery` materialization, answering concurrent read queries
//! while a single writer applies `+fact./-fact./commit.` transaction
//! streams through the incremental maintenance path.
//!
//! The paper's guarantee — the optimized route is indistinguishable
//! from the rectified program, or the failure is typed — extends here
//! to concurrent, faulty, and overloaded execution:
//!
//! * **Snapshot isolation** ([`epoch`]) — every committed transaction
//!   publishes a new epoch: an immutable copy-on-write set of
//!   relations, each frozen at a published row-range watermark
//!   (`Relation::publish_epoch`). Readers pin an epoch at admission and
//!   answer exactly against it; the writer never waits for readers and
//!   readers never wait for the writer.
//! * **Durability** ([`wal`]) — commits append a length+checksum framed
//!   record to a write-ahead log and fsync before acknowledging; replay
//!   on restart tolerates a torn trailing record and reconverges the
//!   materialization tuple-for-tuple by re-applying every surviving
//!   transaction.
//! * **Admission control** ([`admission`]) — a bounded in-flight gate
//!   with typed [`ServeError::Overloaded`] rejection (plus a
//!   retry-after hint), per-request deadlines mapped onto the engine's
//!   `Budget`/`CancelToken` governance, and a slow-reader watchdog that
//!   cancels stragglers instead of letting them pin old epochs forever.
//! * **Graceful degradation** — an IC-violating transaction flips the
//!   maintained route to the rectified program exactly as in one-shot
//!   mode; in-flight readers on older epochs keep their pinned
//!   snapshots and finish unperturbed.

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod epoch;
pub mod error;
pub mod protocol;
pub mod server;
pub mod wal;

pub use admission::{Admission, AdmissionConfig, Permit};
pub use cache::{relation_stamp, AnswerCache, GoalShape, RelationStamp};
pub use epoch::{EpochRegistry, EpochState};
pub use error::ServeError;
pub use protocol::{Connection, Response};
pub use server::{CommitReply, QueryReply, RecoveryReport, ServeConfig, Server, ServerStats};
pub use wal::{Replay, Wal};
