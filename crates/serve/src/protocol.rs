//! The line protocol: one request per line, one framed reply per
//! request.
//!
//! ## Requests
//!
//! | line | meaning |
//! |---|---|
//! | `query goal(args).` | answer `goal` at the latest epoch |
//! | `query@E goal(args).` | answer `goal` pinned at epoch `E` |
//! | `+p(a, b).` / `-p(a, b).` | queue an insert / delete into the open transaction |
//! | `commit.` | commit the queued transaction through WAL + apply + publish |
//! | `epoch.` | report the latest and oldest pinnable epochs |
//! | `stats.` | report server counters |
//! | `ping.` | liveness check |
//! | `quit.` | close the connection |
//!
//! Blank lines and `%`/`#` comments are ignored (so a WAL or a tx file
//! can be replayed over the wire verbatim).
//!
//! ## Replies
//!
//! Queries answer `ok epoch=E route=R rows=N`, then one rendered fact
//! per line, then `end`. Commits answer `ok epoch=E route=R` (plus
//! `violated=i,j` when the commit broke monitored constraints and the
//! daemon degraded to the rectified route, and a trailing `replanned`
//! tag when the commit re-consulted the cost planner). Errors answer a single
//! `err kind=<kind> msg=…` line — `kind` is [`ServeError::kind`], with
//! `retry_after_ms=N` added for `overloaded` — and the connection stays
//! alive: a malformed line rejects *that* request (or poisons the open
//! transaction until its `commit.`, which reports the error and resets),
//! never the session.

use crate::error::ServeError;
use crate::server::Server;
use semrec_datalog::atom::Pred;
use semrec_datalog::parser::parse_atom;
use semrec_engine::incr::TxStreamEvent;
use semrec_engine::{Route, Tuple, TxStreamParser};
use std::sync::Arc;

/// What a handled line sends back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Nothing (the line was queued, a comment, or blank).
    None,
    /// Reply lines to write back.
    Lines(Vec<String>),
    /// Close the connection.
    Quit,
}

/// A stable lowercase tag for each route, used on the wire.
pub fn route_tag(route: Route) -> &'static str {
    match route {
        Route::Direct => "direct",
        Route::Optimized => "optimized",
        Route::RectifiedFallback => "rectified-fallback",
        Route::IncrementalOptimized => "incr-optimized",
        Route::IncrementalInvalidated => "incr-invalidated",
    }
}

/// Renders one tuple of `pred` back into fact syntax, `pred(a, b).` —
/// the same surface the parser accepts, so replies round-trip.
pub fn render_fact(pred: Pred, tuple: &Tuple) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(s, "{pred}(");
    for (i, v) in tuple.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{v}");
    }
    s.push_str(").");
    s
}

/// Renders an error as the single-line `err` reply.
pub fn render_err(e: &ServeError) -> String {
    let msg = e.to_string().replace('\n', " ");
    match e {
        ServeError::Overloaded { retry_after_ms, .. } => {
            format!(
                "err kind={} retry_after_ms={retry_after_ms} msg={msg}",
                e.kind()
            )
        }
        _ => format!("err kind={} msg={msg}", e.kind()),
    }
}

/// One client session: a transaction stream parser plus a handle to the
/// server. Connections are independent; each holds its own open
/// transaction.
pub struct Connection {
    server: Arc<Server>,
    parser: TxStreamParser,
}

impl Connection {
    /// A fresh session against `server`.
    pub fn new(server: Arc<Server>) -> Connection {
        Connection {
            server,
            parser: TxStreamParser::new(),
        }
    }

    /// Facts queued in the open (uncommitted) transaction.
    pub fn pending_ops(&self) -> usize {
        self.parser.pending_ops()
    }

    /// Handles one request line.
    pub fn handle_line(&mut self, raw: &str) -> Response {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
            return Response::None;
        }
        if line == "quit." {
            return Response::Quit;
        }
        if line == "ping." {
            return Response::Lines(vec!["ok pong".to_string()]);
        }
        if line == "epoch." {
            let stats = self.server.stats();
            return Response::Lines(vec![format!(
                "ok epoch={} oldest={}",
                stats.epoch, stats.oldest_epoch
            )]);
        }
        if line == "stats." {
            let s = self.server.stats();
            return Response::Lines(vec![format!(
                "ok commits={} epoch={} oldest={} admitted={} rejected={} reaped={} \
                 cache_hits={} cache_misses={} batches={} batched_txs={}",
                s.commits,
                s.epoch,
                s.oldest_epoch,
                s.admitted,
                s.rejected,
                s.watchdog_cancelled,
                s.cache_hits,
                s.cache_misses,
                s.batches,
                s.batched_txs
            )]);
        }
        if let Some(rest) = line.strip_prefix("query") {
            return self.handle_query(rest);
        }
        // Everything else is a transaction-stream line (+fact./-fact./
        // commit.), validated by the shared parser.
        self.handle_tx_line(line)
    }

    /// `query goal(args).` / `query@E goal(args).`
    fn handle_query(&mut self, rest: &str) -> Response {
        let (at, goal_src) = match rest.strip_prefix('@') {
            None => (None, rest),
            Some(tail) => {
                let end = tail
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(tail.len());
                match tail[..end].parse::<u64>() {
                    Ok(e) => (Some(e), &tail[end..]),
                    Err(_) => {
                        return Response::Lines(vec![render_err(&ServeError::Protocol(
                            "query@ needs a numeric epoch".to_string(),
                        ))]);
                    }
                }
            }
        };
        let goal_src = goal_src.trim().trim_end_matches('.');
        let goal = match parse_atom(goal_src) {
            Ok(g) => g,
            Err(e) => {
                return Response::Lines(vec![render_err(&ServeError::Protocol(format!(
                    "bad goal: {e}"
                )))]);
            }
        };
        match self.server.query(&goal, at, None) {
            Ok(reply) => {
                let mut lines = Vec::with_capacity(reply.tuples.len() + 2);
                lines.push(format!(
                    "ok epoch={} route={} rows={}",
                    reply.epoch,
                    route_tag(reply.route),
                    reply.tuples.len()
                ));
                for t in &reply.tuples {
                    lines.push(render_fact(goal.pred, t));
                }
                lines.push("end".to_string());
                Response::Lines(lines)
            }
            Err(e) => Response::Lines(vec![render_err(&e)]),
        }
    }

    /// `+fact.` / `-fact.` / `commit.` through the shared stream parser:
    /// a malformed line poisons only the open transaction; its `commit.`
    /// reports the error and the next transaction starts clean.
    fn handle_tx_line(&mut self, line: &str) -> Response {
        match self.parser.feed(line) {
            Ok(TxStreamEvent::Queued) => Response::None,
            Ok(TxStreamEvent::Committed(None)) => {
                let stats = self.server.stats();
                Response::Lines(vec![format!("ok epoch={} empty", stats.epoch)])
            }
            Ok(TxStreamEvent::Committed(Some(tx))) => match self.server.commit(&tx) {
                Ok(reply) => {
                    let mut msg =
                        format!("ok epoch={} route={}", reply.epoch, route_tag(reply.route));
                    if !reply.violated.is_empty() {
                        use std::fmt::Write as _;
                        let _ = write!(msg, " violated=");
                        for (i, v) in reply.violated.iter().enumerate() {
                            if i > 0 {
                                msg.push(',');
                            }
                            let _ = write!(msg, "{v}");
                        }
                    }
                    if reply.replanned {
                        msg.push_str(" replanned");
                    }
                    Response::Lines(vec![msg])
                }
                Err(e) => Response::Lines(vec![render_err(&e)]),
            },
            Err(e) => Response::Lines(vec![render_err(&ServeError::Protocol(e.to_string()))]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;
    use semrec_datalog::parser::parse_unit;

    fn conn() -> Connection {
        let unit = parse_unit(
            "reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- edge(X, Z), reach(Z, Y).\n\
             edge(1, 2). edge(2, 3).",
        )
        .expect("parse");
        let (server, _) = Server::open(&unit, ServeConfig::default(), None).expect("open");
        Connection::new(server)
    }

    fn lines(r: Response) -> Vec<String> {
        match r {
            Response::Lines(l) => l,
            other => panic!("expected lines, got {other:?}"),
        }
    }

    #[test]
    fn query_commit_query_session() {
        let mut c = conn();
        let out = lines(c.handle_line("query reach(1, Y)."));
        assert_eq!(out[0], "ok epoch=0 route=direct rows=2");
        assert_eq!(out[1], "reach(1, 2).");
        assert_eq!(out.last().unwrap(), "end");

        assert_eq!(c.handle_line("+edge(3, 4)."), Response::None);
        let out = lines(c.handle_line("commit."));
        assert!(out[0].starts_with("ok epoch=1"), "{out:?}");

        let out = lines(c.handle_line("query@0 reach(1, Y)."));
        assert_eq!(out[0], "ok epoch=0 route=direct rows=2");
        let out = lines(c.handle_line("query reach(1, Y)."));
        assert!(out[0].contains("rows=3"), "{out:?}");
    }

    #[test]
    fn malformed_tx_line_rejects_only_that_transaction() {
        let mut c = conn();
        assert_eq!(c.handle_line("+edge(7, 8)."), Response::None);
        let out = lines(c.handle_line("+edge(oops"));
        assert!(out[0].starts_with("err kind=protocol"), "{out:?}");
        // The poisoned transaction reports the error at commit and
        // resets; nothing was applied.
        let out = lines(c.handle_line("commit."));
        assert!(out[0].starts_with("err kind=protocol"), "{out:?}");
        let out = lines(c.handle_line("query reach(1, Y)."));
        assert!(out[0].contains("epoch=0"), "{out:?}");
        // The connection is alive and the next transaction is clean.
        assert_eq!(c.handle_line("+edge(3, 4)."), Response::None);
        let out = lines(c.handle_line("commit."));
        assert!(out[0].starts_with("ok epoch=1"), "{out:?}");
    }

    #[test]
    fn control_lines() {
        let mut c = conn();
        assert_eq!(lines(c.handle_line("ping."))[0], "ok pong");
        assert_eq!(lines(c.handle_line("epoch."))[0], "ok epoch=0 oldest=0");
        assert!(lines(c.handle_line("stats."))[0].starts_with("ok commits=0"));
        assert_eq!(c.handle_line("% comment"), Response::None);
        assert_eq!(c.handle_line("   "), Response::None);
        assert_eq!(c.handle_line("quit."), Response::Quit);
        let out = lines(c.handle_line("query@banana reach(1, Y)."));
        assert!(out[0].starts_with("err kind=protocol"), "{out:?}");
        let out = lines(c.handle_line("commit."));
        assert!(out[0].contains("empty"), "{out:?}");
    }
}
