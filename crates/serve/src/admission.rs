//! Admission control: a bounded in-flight gate with typed overload
//! shedding and a slow-reader watchdog.
//!
//! ## State machine
//!
//! A request is in exactly one of four states:
//!
//! ```text
//!            gate full or no deadline headroom
//!   arrive ────────────────────────────────────▶ REJECTED (Overloaded + retry-after)
//!     │
//!     │ slot acquired
//!     ▼
//!  ADMITTED ──── finishes ──▶ DONE (slot freed, latency folded into EWMA)
//!     │
//!     │ runs past the watchdog threshold
//!     ▼
//!  CANCELLED (cooperative: the reader observes its CancelToken and
//!             returns EpochReclaimed; the slot frees as usual)
//! ```
//!
//! Rejection happens **before** any work: an overloaded daemon sheds
//! load in O(1) per request instead of queueing unboundedly. The
//! retry-after hint is the EWMA of recently completed request
//! latencies — an estimate of when one slot frees.
//!
//! The watchdog exists for epoch reclamation, not fairness: a reader
//! pins its epoch's `Arc` for as long as it runs, so a stuck reader
//! would hold an arbitrarily old snapshot in memory forever. Cancelling
//! it (cooperatively, at the reader's next poll) bounds that window
//! without ever making the writer wait.

use crate::error::ServeError;
use semrec_engine::CancelToken;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Gate configuration.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Maximum concurrently admitted requests; the gate sheds beyond it.
    pub max_inflight: usize,
    /// Requests whose effective deadline is below this are rejected
    /// outright — they could not finish in time, so starting them only
    /// steals capacity from requests that can.
    pub min_headroom: Duration,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Cancel admitted requests still running after this long (the
    /// slow-reader watchdog); `None` disables it.
    pub watchdog_after: Option<Duration>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 64,
            min_headroom: Duration::ZERO,
            default_deadline: None,
            watchdog_after: None,
        }
    }
}

struct ActiveEntry {
    cancel: CancelToken,
    started: Instant,
    reclaimed: Arc<AtomicBool>,
}

/// The admission gate. Shared (`Arc`) between connection handlers and
/// the watchdog.
pub struct Admission {
    cfg: AdmissionConfig,
    inflight: AtomicUsize,
    /// EWMA of completed-request latency, in microseconds (×1000 fixed
    /// point would be overkill; µs resolution is plenty for a hint).
    ewma_us: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    watchdog_cancelled: AtomicU64,
    next_id: AtomicU64,
    active: Mutex<HashMap<u64, ActiveEntry>>,
}

impl Admission {
    /// A gate with the given configuration.
    pub fn new(cfg: AdmissionConfig) -> Arc<Admission> {
        Arc::new(Admission {
            cfg,
            inflight: AtomicUsize::new(0),
            ewma_us: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            watchdog_cancelled: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            active: Mutex::new(HashMap::new()),
        })
    }

    /// The gate's configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Total requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Total requests shed with `Overloaded`.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Total admitted requests the watchdog cancelled.
    pub fn watchdog_cancelled(&self) -> u64 {
        self.watchdog_cancelled.load(Ordering::Relaxed)
    }

    /// The retry-after hint: the latency EWMA, floored at 1ms.
    fn retry_after_ms(&self) -> u64 {
        (self.ewma_us.load(Ordering::Relaxed) / 1000).max(1)
    }

    /// Tries to admit a request. `deadline` is the client's own bound,
    /// if any; the configured default applies otherwise. Returns the
    /// typed `Overloaded` rejection when the gate is full or the
    /// effective deadline is under the headroom floor.
    pub fn admit(self: &Arc<Self>, deadline: Option<Duration>) -> Result<Permit, ServeError> {
        let effective = deadline.or(self.cfg.default_deadline);
        if let Some(d) = effective {
            if d < self.cfg.min_headroom {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    inflight: self.inflight.load(Ordering::Relaxed),
                    limit: self.cfg.max_inflight,
                    retry_after_ms: self.retry_after_ms(),
                });
            }
        }
        // Optimistic increment; back out on overshoot. Two racers both
        // overshooting both back out — strictly bounded, never stuck.
        let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
        if prev >= self.cfg.max_inflight {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded {
                inflight: prev,
                limit: self.cfg.max_inflight,
                retry_after_ms: self.retry_after_ms(),
            });
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = CancelToken::new();
        let reclaimed = Arc::new(AtomicBool::new(false));
        self.active.lock().expect("admission lock").insert(
            id,
            ActiveEntry {
                cancel: cancel.clone(),
                started: Instant::now(),
                reclaimed: Arc::clone(&reclaimed),
            },
        );
        Ok(Permit {
            gate: Arc::clone(self),
            id,
            started: Instant::now(),
            cancel,
            reclaimed,
            deadline: effective,
        })
    }

    /// One watchdog sweep: cancels every admitted request running
    /// longer than `older_than`, marking it reclaimed so the reader can
    /// distinguish watchdog cancellation (`EpochReclaimed`) from a
    /// client abort (`Cancelled`). Returns how many were cancelled.
    pub fn reap_slow(&self, older_than: Duration) -> usize {
        let now = Instant::now();
        let mut n = 0;
        let active = self.active.lock().expect("admission lock");
        for entry in active.values() {
            if now.duration_since(entry.started) >= older_than && !entry.cancel.is_cancelled() {
                entry.reclaimed.store(true, Ordering::Release);
                entry.cancel.cancel();
                n += 1;
            }
        }
        self.watchdog_cancelled
            .fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    fn finish(&self, id: u64, elapsed: Duration) {
        self.active.lock().expect("admission lock").remove(&id);
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        // EWMA fold, α = 1/4. Racy read-modify-write is fine for a hint.
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let old = self.ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 { us } else { old - old / 4 + us / 4 };
        self.ewma_us.store(new, Ordering::Relaxed);
    }
}

/// An admitted request's slot. Dropping it frees the slot and folds the
/// request latency into the retry-after estimate.
pub struct Permit {
    gate: Arc<Admission>,
    id: u64,
    started: Instant,
    cancel: CancelToken,
    reclaimed: Arc<AtomicBool>,
    deadline: Option<Duration>,
}

impl Permit {
    /// The cancel token the request's evaluation must poll.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The effective deadline (request's own, or the configured
    /// default).
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Time left before the effective deadline (`None` = unbounded).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_sub(self.started.elapsed()))
    }

    /// True once the watchdog cancelled this request to unblock epoch
    /// reclamation — the reader should surface `EpochReclaimed`, not
    /// plain `Cancelled`.
    pub fn was_reclaimed(&self) -> bool {
        self.reclaimed.load(Ordering::Acquire)
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.gate.finish(self.id, self.started.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_sheds_beyond_capacity_with_retry_hint() {
        let gate = Admission::new(AdmissionConfig {
            max_inflight: 2,
            ..AdmissionConfig::default()
        });
        let a = gate.admit(None).unwrap();
        let _b = gate.admit(None).unwrap();
        let err = gate.admit(None).map(|_| ()).expect_err("gate is full");
        match err {
            ServeError::Overloaded {
                limit,
                retry_after_ms,
                ..
            } => {
                assert_eq!(limit, 2);
                assert!(retry_after_ms >= 1);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(gate.rejected(), 1);
        drop(a);
        // A slot freed: admission works again.
        let _c = gate.admit(None).unwrap();
        assert_eq!(gate.admitted(), 3);
    }

    #[test]
    fn deadline_headroom_floor_rejects_unfinishable_requests() {
        let gate = Admission::new(AdmissionConfig {
            max_inflight: 8,
            min_headroom: Duration::from_millis(10),
            ..AdmissionConfig::default()
        });
        assert!(matches!(
            gate.admit(Some(Duration::from_millis(1))),
            Err(ServeError::Overloaded { .. })
        ));
        assert!(gate.admit(Some(Duration::from_millis(50))).is_ok());
        // No deadline at all is unbounded: admitted.
        assert!(gate.admit(None).is_ok());
    }

    #[test]
    fn watchdog_cancels_old_readers_and_marks_them_reclaimed() {
        let gate = Admission::new(AdmissionConfig::default());
        let p = gate.admit(None).unwrap();
        assert!(!p.cancel_token().is_cancelled());
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(gate.reap_slow(Duration::from_millis(1)), 1);
        assert!(p.cancel_token().is_cancelled());
        assert!(p.was_reclaimed());
        assert_eq!(gate.watchdog_cancelled(), 1);
        // Already-cancelled entries are not double-counted.
        assert_eq!(gate.reap_slow(Duration::from_millis(1)), 0);
    }

    #[test]
    fn default_deadline_applies_when_request_has_none() {
        let gate = Admission::new(AdmissionConfig {
            default_deadline: Some(Duration::from_millis(30)),
            ..AdmissionConfig::default()
        });
        let p = gate.admit(None).unwrap();
        assert_eq!(p.deadline(), Some(Duration::from_millis(30)));
    }
}
