//! The epoch answer cache: memoized query answers keyed by relation
//! generation, so repeated goals against an unchanged relation skip
//! even the index probe.
//!
//! ## The key: last-change stamp + generation
//!
//! Copy-on-write publication ([`crate::epoch`]) shares `Arc<Relation>`s
//! between epochs whenever a commit did not touch a predicate, and
//! stamps every relation it *does* clone with the publishing epoch
//! ([`publish_epoch`](semrec_engine::Relation::publish_epoch)); a
//! shared relation keeps the stamp of the epoch that last changed it.
//! Keying the cache on `(goal shape, stamp, generation)` therefore
//! gives exactly the invalidation the snapshot discipline promises,
//! for free:
//!
//! * a commit that changes a predicate publishes a freshly stamped
//!   clone — stale entries simply stop being addressed, never served;
//! * a commit that leaves a predicate untouched shares the old `Arc`,
//!   so queries at the new epoch keep *hitting* the old entries;
//! * readers pinned at older epochs address the old stamp and stay
//!   consistent with their snapshot.
//!
//! The [`generation`](semrec_engine::Relation::generation) mutation
//! counter rides along as a cross-check, but cannot stand alone: a
//! route invalidation rebuilds the materialization from scratch, and a
//! *different relation instance*'s independent generation counter may
//! collide with an older published value. The publication stamp is
//! what uniquely names the visible relation state — epoch ids never
//! repeat within a server, and at most one relation per predicate is
//! published per epoch.
//!
//! No explicit invalidation hook exists, and none is needed.
//!
//! ## Goal shape
//!
//! Two goals share a cache entry iff they are identical up to variable
//! *renaming*: constants must match by value and position, and the
//! equality pattern among variables must match (`reach(X, X)` and
//! `reach(Y, Y)` share; `reach(X, Y)` does not). Variables are
//! canonicalized to their first-occurrence index.
//!
//! ## Bounds and concurrency
//!
//! The cache is a FIFO-bounded map under one mutex — entries are
//! `Arc<Vec<Tuple>>`, so a hit is a pointer clone and the lock is held
//! only for the map operation, never while answering. Hit/miss
//! counters are relaxed atomics surfaced through the `stats.` verb.

use semrec_datalog::atom::{Atom, Pred};
use semrec_datalog::term::{Term, Value};
use semrec_engine::Tuple;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One canonicalized goal argument: a constant by value, or a variable
/// by the argument index of its first occurrence (so renaming-equivalent
/// goals collide and equality patterns are preserved).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum ShapeArg {
    Const(Value),
    Var(u32),
}

/// The renaming-invariant shape of a query goal — the cache's notion of
/// "the same question".
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GoalShape {
    pred: Pred,
    args: Vec<ShapeArg>,
}

impl GoalShape {
    /// Canonicalizes `goal`: constants verbatim, each variable replaced
    /// by the argument index where it first appears.
    pub fn of(goal: &Atom) -> GoalShape {
        let args = goal
            .args
            .iter()
            .enumerate()
            .map(|(i, t)| match t {
                Term::Const(c) => ShapeArg::Const(*c),
                Term::Var(x) => {
                    let first = goal.args[..i]
                        .iter()
                        .position(|u| matches!(u, Term::Var(y) if y == x))
                        .unwrap_or(i);
                    ShapeArg::Var(first as u32)
                }
            })
            .collect();
        GoalShape {
            pred: goal.pred,
            args,
        }
    }
}

/// The identity of one immutable published relation state: the epoch
/// that last changed it (its [`publish_epoch`] stamp — unique per
/// server run) plus its mutation [`generation`] as a cross-check.
/// `None` names "the predicate has no relation at the pinned epoch"
/// (the answer is the empty set, cacheable too).
///
/// [`publish_epoch`]: semrec_engine::Relation::publish_epoch
/// [`generation`]: semrec_engine::Relation::generation
pub type RelationStamp = Option<(u64, u64)>;

/// Reads the cache identity off a pinned relation.
pub fn relation_stamp(rel: &semrec_engine::Relation) -> RelationStamp {
    Some((rel.published_epoch().unwrap_or(u64::MAX), rel.generation()))
}

/// Full cache key: which question, against which immutable state.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct CacheKey {
    shape: GoalShape,
    stamp: RelationStamp,
}

struct CacheMap {
    map: HashMap<CacheKey, Arc<Vec<Tuple>>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<CacheKey>,
}

/// A bounded, generation-keyed answer cache shared by all readers.
pub struct AnswerCache {
    inner: Mutex<CacheMap>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AnswerCache {
    /// An empty cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> AnswerCache {
        AnswerCache {
            inner: Mutex::new(CacheMap {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up the answer for `shape` against relation state `stamp`,
    /// counting a hit or miss.
    pub fn get(&self, shape: &GoalShape, stamp: RelationStamp) -> Option<Arc<Vec<Tuple>>> {
        let key = CacheKey {
            shape: shape.clone(),
            stamp,
        };
        let found = self
            .inner
            .lock()
            .expect("cache lock")
            .map
            .get(&key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores an answer, evicting the oldest entry when full. A racing
    /// duplicate insert keeps the existing entry's slot.
    pub fn insert(&self, shape: GoalShape, stamp: RelationStamp, tuples: Arc<Vec<Tuple>>) {
        let key = CacheKey { shape, stamp };
        let mut inner = self.inner.lock().expect("cache lock");
        if inner.map.insert(key.clone(), tuples).is_none() {
            inner.order.push_back(key);
            while inner.map.len() > self.capacity {
                let Some(old) = inner.order.pop_front() else {
                    break;
                };
                inner.map.remove(&old);
            }
        }
    }

    /// Lookups answered from the cache since startup.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute their answer since startup.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datalog::parser::parse_atom;
    use semrec_engine::int_tuple;

    fn shape(s: &str) -> GoalShape {
        GoalShape::of(&parse_atom(s).unwrap())
    }

    #[test]
    fn shapes_identify_up_to_renaming() {
        assert_eq!(shape("r(X, Y)"), shape("r(A, B)"));
        assert_eq!(shape("r(X, X)"), shape("r(B, B)"));
        assert_ne!(shape("r(X, X)"), shape("r(X, Y)"));
        assert_ne!(shape("r(1, Y)"), shape("r(2, Y)"));
        assert_ne!(shape("r(1, Y)"), shape("s(1, Y)"));
    }

    #[test]
    fn stamp_partitions_entries() {
        let cache = AnswerCache::new(8);
        let s = shape("r(1, Y)");
        cache.insert(s.clone(), Some((3, 0)), Arc::new(vec![int_tuple(&[1, 2])]));
        assert!(cache.get(&s, Some((3, 0))).is_some());
        assert!(cache.get(&s, Some((4, 0))).is_none(), "new stamp misses");
        assert!(
            cache.get(&s, Some((3, 1))).is_none(),
            "generation cross-check misses"
        );
        assert!(cache.get(&s, None).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn fifo_eviction_bounds_the_map() {
        let cache = AnswerCache::new(2);
        for g in 0..5u64 {
            cache.insert(shape("r(X, Y)"), Some((g, 0)), Arc::new(Vec::new()));
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&shape("r(X, Y)"), Some((4, 0))).is_some());
        assert!(cache.get(&shape("r(X, Y)"), Some((0, 0))).is_none());
    }
}
