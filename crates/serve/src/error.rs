//! The daemon's typed error surface.
//!
//! Every failure a client (or the operator) can see is one of these
//! variants — the serving extension of the engine's "exact answer or
//! typed error, never wrong" discipline. The three serving-specific
//! conditions (`Overloaded`, `WalCorrupt`, `EpochReclaimed`) get their
//! own CLI exit codes; see `src/bin/semrec.rs`.

use semrec_engine::EngineError;
use std::fmt;

/// Everything that can go wrong serving a request or a commit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control shed this request: the in-flight gate is full
    /// or the request's deadline leaves no headroom to finish. The
    /// request was **not** started; retry after the hint.
    Overloaded {
        /// Requests currently admitted (or queue depth hit).
        inflight: usize,
        /// The configured admission limit.
        limit: usize,
        /// Estimated milliseconds until capacity frees up (an EWMA of
        /// recent request latency; at least 1).
        retry_after_ms: u64,
    },
    /// The write-ahead log holds a record that is structurally complete
    /// but fails verification (bad checksum, absurd length, non-UTF-8
    /// payload) — data corruption, not a torn append. Refusing to
    /// replay is the only sound response: skipping a committed record
    /// would serve answers that diverge from the acknowledged history.
    WalCorrupt {
        /// Byte offset of the corrupt record's frame header.
        offset: u64,
        /// What failed to verify.
        detail: String,
    },
    /// The reader asked for an epoch the registry no longer retains
    /// (fell off the retention ring, or the reader was cancelled by the
    /// slow-reader watchdog to let reclamation proceed).
    EpochReclaimed {
        /// The epoch the reader wanted.
        requested: u64,
        /// The oldest epoch still retained.
        oldest: u64,
    },
    /// A malformed request line. The connection stays alive; only this
    /// request (or the in-progress transaction) is rejected.
    Protocol(String),
    /// An engine error from evaluation or maintenance (budget trips,
    /// cancellation, injected faults), passed through with its own
    /// exit-code mapping intact.
    Engine(EngineError),
    /// An I/O failure outside the WAL verification path (socket errors,
    /// WAL file creation, an injected `wal.append`/`wal.fsync` fault).
    Io(String),
}

impl ServeError {
    /// A stable machine-readable kind tag, used by the wire protocol
    /// (`err kind=…`) and the exit-code mapping.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::WalCorrupt { .. } => "wal-corrupt",
            ServeError::EpochReclaimed { .. } => "epoch-reclaimed",
            ServeError::Protocol(_) => "protocol",
            ServeError::Engine(_) => "engine",
            ServeError::Io(_) => "io",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded {
                inflight,
                limit,
                retry_after_ms,
            } => write!(
                f,
                "overloaded: {inflight}/{limit} requests in flight; retry in ~{retry_after_ms}ms"
            ),
            ServeError::WalCorrupt { offset, detail } => {
                write!(f, "WAL corrupt at byte {offset}: {detail}")
            }
            ServeError::EpochReclaimed { requested, oldest } => {
                write!(f, "epoch {requested} reclaimed (oldest retained: {oldest})")
            }
            ServeError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ServeError::Engine(e) => write!(f, "{e}"),
            ServeError::Io(msg) => write!(f, "io: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        let e = ServeError::Overloaded {
            inflight: 8,
            limit: 8,
            retry_after_ms: 5,
        };
        assert_eq!(e.kind(), "overloaded");
        assert!(e.to_string().contains("8/8"));
        assert_eq!(
            ServeError::EpochReclaimed {
                requested: 3,
                oldest: 7
            }
            .kind(),
            "epoch-reclaimed"
        );
        assert_eq!(
            ServeError::WalCorrupt {
                offset: 12,
                detail: "checksum".into()
            }
            .kind(),
            "wal-corrupt"
        );
    }
}
