//! Epoch snapshots: copy-on-write publication and reader pinning.
//!
//! Every committed transaction publishes a new [`EpochState`]: the
//! epoch id, the route answering queries at that epoch, and an
//! immutable set of relations. Publication is copy-on-write over the
//! previous epoch — only relations whose [`Relation::generation`]
//! changed since the last publish are cloned (and stamped via
//! [`Relation::publish_epoch`]); untouched ones share their `Arc`
//! across epochs, so a commit that inserts one `edge` fact clones the
//! `edge` and `reach` relations and shares everything else.
//!
//! Readers pin an epoch by cloning its `Arc` out of the registry — a
//! pointer copy under a briefly-held read lock, never blocked by the
//! writer's evaluation work — and answer against the pinned state for
//! the whole request, no matter how many commits land meanwhile. The
//! writer's publish is a ring push under a briefly-held write lock,
//! never blocked by however slowly a reader is scanning. An epoch's
//! memory is reclaimed when it both falls off the retention ring and
//! the last pinned reader drops its `Arc`; the slow-reader watchdog
//! ([`crate::admission`]) cancels readers that would otherwise hold
//! reclamation hostage.

use crate::error::ServeError;
use semrec_datalog::atom::Pred;
use semrec_engine::{Relation, Route};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, RwLock};

/// One published epoch: an immutable, consistent view of every
/// relation (EDB and IDB) at a commit boundary.
#[derive(Clone, Debug)]
pub struct EpochState {
    /// The epoch id: 0 for the initial materialization, +1 per
    /// published commit. Process-local — epochs restart at the replayed
    /// commit count after recovery.
    pub epoch: u64,
    /// The maintenance route answering queries at this epoch (optimized
    /// vs rectified-after-invalidation etc.).
    pub route: Route,
    /// Every relation visible at this epoch. The `Relation` values are
    /// frozen: nothing mutates them after publication, so readers
    /// iterate [`Relation::snapshot_rows`] without locks.
    pub rels: BTreeMap<Pred, Arc<Relation>>,
}

impl EpochState {
    /// The relation for `pred` at this epoch, if any.
    pub fn relation(&self, pred: Pred) -> Option<&Arc<Relation>> {
        self.rels.get(&pred)
    }

    /// Builds the successor epoch copy-on-write: relations whose
    /// generation is unchanged from `self` share their `Arc`; changed
    /// (or new) ones are cloned and stamped with the new epoch.
    /// Relations absent from `current` are dropped (the writer deleted
    /// the predicate — does not happen today, but the view must follow
    /// the writer, not accrete).
    pub fn cow_successor<'a>(
        &self,
        epoch: u64,
        route: Route,
        current: impl Iterator<Item = (Pred, &'a Relation)>,
    ) -> EpochState {
        let mut rels = BTreeMap::new();
        for (p, rel) in current {
            let reuse = self
                .rels
                .get(&p)
                .filter(|prev| prev.generation() == rel.generation());
            let arc = match reuse {
                Some(prev) => Arc::clone(prev),
                None => {
                    let mut frozen = rel.clone();
                    frozen.publish_epoch(epoch);
                    Arc::new(frozen)
                }
            };
            rels.insert(p, arc);
        }
        EpochState { epoch, route, rels }
    }
}

/// The ring of recently published epochs.
#[derive(Debug)]
pub struct EpochRegistry {
    ring: RwLock<VecDeque<Arc<EpochState>>>,
    retain: usize,
}

impl EpochRegistry {
    /// A registry seeded with `initial` (epoch 0), retaining up to
    /// `retain` epochs (at least 1 — the latest is always pinnable).
    pub fn new(initial: EpochState, retain: usize) -> EpochRegistry {
        let mut ring = VecDeque::new();
        ring.push_back(Arc::new(initial));
        EpochRegistry {
            ring: RwLock::new(ring),
            retain: retain.max(1),
        }
    }

    /// Publishes `state` as the newest epoch, dropping the oldest
    /// beyond the retention bound. Hits the `snapshot.publish`
    /// failpoint first: an injected failure leaves the ring unchanged
    /// (the commit stays durable and applied; publication is retried by
    /// the next commit, whose epoch subsumes this one).
    pub fn publish(&self, state: EpochState) -> Result<Arc<EpochState>, ServeError> {
        #[cfg(feature = "failpoints")]
        semrec_engine::failpoint::hit("snapshot.publish")
            .map_err(|m| ServeError::Io(format!("snapshot publish: {m}")))?;
        let arc = Arc::new(state);
        let mut ring = self.ring.write().expect("epoch ring poisoned");
        debug_assert!(ring.back().is_none_or(|b| b.epoch < arc.epoch));
        ring.push_back(Arc::clone(&arc));
        while ring.len() > self.retain {
            ring.pop_front();
        }
        Ok(arc)
    }

    /// Pins the newest epoch.
    pub fn latest(&self) -> Arc<EpochState> {
        let ring = self.ring.read().expect("epoch ring poisoned");
        Arc::clone(ring.back().expect("registry seeded at construction"))
    }

    /// The oldest retained epoch id.
    pub fn oldest(&self) -> u64 {
        let ring = self.ring.read().expect("epoch ring poisoned");
        ring.front().expect("registry seeded at construction").epoch
    }

    /// Pins a specific epoch (`None` = latest). A request for an epoch
    /// that fell off the ring is the typed
    /// [`ServeError::EpochReclaimed`]; a request ahead of the newest
    /// published epoch is a protocol error (the client invented it).
    pub fn pin(&self, epoch: Option<u64>) -> Result<Arc<EpochState>, ServeError> {
        let ring = self.ring.read().expect("epoch ring poisoned");
        let newest = ring.back().expect("registry seeded at construction");
        let Some(e) = epoch else {
            return Ok(Arc::clone(newest));
        };
        if e > newest.epoch {
            return Err(ServeError::Protocol(format!(
                "epoch {e} not yet published (latest: {})",
                newest.epoch
            )));
        }
        match ring.iter().find(|s| s.epoch == e) {
            Some(s) => Ok(Arc::clone(s)),
            None => Err(ServeError::EpochReclaimed {
                requested: e,
                oldest: ring.front().expect("non-empty").epoch,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_engine::int_tuple;

    fn rel(tuples: &[[i64; 2]]) -> Relation {
        let mut r = Relation::new(2);
        for t in tuples {
            r.insert(int_tuple(t));
        }
        r
    }

    fn state(epoch: u64, edges: &[[i64; 2]]) -> EpochState {
        let mut rels = BTreeMap::new();
        let mut e = rel(edges);
        e.publish_epoch(epoch);
        rels.insert(Pred::from("edge"), Arc::new(e));
        EpochState {
            epoch,
            route: Route::Direct,
            rels,
        }
    }

    #[test]
    fn cow_shares_unchanged_and_clones_changed() {
        let s0 = state(0, &[[1, 2]]);
        let mut w = rel(&[[1, 2]]);
        // A clone keeps the generation, so sharing kicks in for `edge`.
        let edge_same_gen = (**s0.relation(Pred::from("edge")).unwrap()).clone();
        w.insert(int_tuple(&[9, 9]));
        let current: Vec<(Pred, &Relation)> =
            vec![(Pred::from("edge"), &edge_same_gen), (Pred::from("w"), &w)];
        let s1 = s0.cow_successor(1, Route::Direct, current.into_iter());
        assert!(Arc::ptr_eq(
            s1.relation(Pred::from("edge")).unwrap(),
            s0.relation(Pred::from("edge")).unwrap()
        ));
        let wp = s1.relation(Pred::from("w")).unwrap();
        assert_eq!(wp.published_epoch(), Some(1));
        assert_eq!(wp.len(), 2);
    }

    #[test]
    fn registry_retains_and_reclaims() {
        let reg = EpochRegistry::new(state(0, &[[1, 2]]), 2);
        reg.publish(state(1, &[[1, 2], [2, 3]])).unwrap();
        reg.publish(state(2, &[[1, 2], [2, 3], [3, 4]])).unwrap();
        assert_eq!(reg.latest().epoch, 2);
        assert_eq!(reg.oldest(), 1);
        assert_eq!(reg.pin(Some(1)).unwrap().epoch, 1);
        match reg.pin(Some(0)) {
            Err(ServeError::EpochReclaimed { requested, oldest }) => {
                assert_eq!((requested, oldest), (0, 1));
            }
            other => panic!("expected EpochReclaimed, got {other:?}"),
        }
        assert!(matches!(reg.pin(Some(9)), Err(ServeError::Protocol(_))));
        // A pinned Arc outlives reclamation: readers on epoch 1 keep
        // their snapshot even after two more publishes push it off.
        let pinned = reg.pin(Some(1)).unwrap();
        reg.publish(state(3, &[])).unwrap();
        reg.publish(state(4, &[])).unwrap();
        assert_eq!(pinned.epoch, 1);
        assert_eq!(
            pinned.relation(Pred::from("edge")).unwrap().len(),
            2,
            "pinned snapshot unchanged"
        );
    }
}
