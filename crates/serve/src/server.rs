//! The daemon core: one writer applying transactions through the
//! maintained incremental path, many readers answering against pinned
//! epoch snapshots.
//!
//! ## Commit ordering
//!
//! ```text
//! WAL append + fsync  →  MaintainedQuery::apply  →  COW epoch publish
//! ```
//!
//! * An append/fsync failure rejects the commit before anything is
//!   applied — the log rolls back to its pre-append length.
//! * An apply failure (budget trip, injected fault) truncates the
//!   just-written record back out of the log, so the WAL and the applied
//!   history stay byte-for-byte in step; `MaintainedQuery::apply` is
//!   itself atomic-on-error, so the in-memory state is untouched too.
//! * A publish failure (injected `snapshot.publish` fault) leaves the
//!   commit durable *and* applied but unpublished: the epoch id does not
//!   advance, and the next successful publish — whose copy-on-write diff
//!   is taken against the last *published* epoch — subsumes it. Readers
//!   meanwhile keep answering at the last published epoch, which is a
//!   consistent (merely stale) snapshot.
//! * A crash between fsync and apply leaves the record in the log;
//!   replay re-applies it on restart. Restart state is *defined* as the
//!   serial replay of the surviving log, so this is convergent, not a
//!   divergence.
//!
//! Readers take no part in any of this: a read pins an epoch `Arc` out
//! of the registry (a pointer clone under a briefly-held read lock) and
//! scans frozen relations. The writer's mutex is never on a read path.

use crate::admission::{Admission, AdmissionConfig, Permit};
use crate::epoch::{EpochRegistry, EpochState};
use crate::error::ServeError;
use crate::wal::Wal;
use semrec_core::{MaintainedQuery, OptimizerConfig};
use semrec_datalog::atom::{Atom, Pred};
use semrec_datalog::parser::Unit;
use semrec_engine::eval::goal_matches;
use semrec_engine::{tx_to_stream, Budget, Database, Route, Tuning, Tuple, Tx, UpdateStats};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often a reader's scan loop polls its cancel token and deadline.
const POLL_EVERY_ROWS: usize = 1024;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Evaluator tuning (threads × cutover × kernels) for the initial
    /// materialization and every maintenance pass.
    pub tuning: Tuning,
    /// Optimizer configuration for the maintained plan.
    pub optimizer: OptimizerConfig,
    /// Admission gate configuration.
    pub admission: AdmissionConfig,
    /// How many published epochs stay pinnable (at least 1).
    pub retain_epochs: usize,
    /// Budget applied to each transaction's maintenance work.
    pub write_budget: Budget,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tuning: Tuning::default(),
            optimizer: OptimizerConfig::default(),
            admission: AdmissionConfig::default(),
            retain_epochs: 8,
            write_budget: Budget::unlimited(),
        }
    }
}

/// What [`Server::open`] recovered before going live.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryReport {
    /// Committed transactions replayed from the WAL.
    pub replayed_commits: usize,
    /// Byte offset a torn trailing WAL record was truncated back to,
    /// if one was found.
    pub truncated_tail: Option<u64>,
    /// The epoch the daemon starts serving at (the replayed commit
    /// count; epochs are process-local).
    pub epoch: u64,
}

/// One answered query.
#[derive(Clone, Debug)]
pub struct QueryReply {
    /// The epoch the answer is exact at.
    pub epoch: u64,
    /// The route that materialized the relations at that epoch.
    pub route: Route,
    /// Matching tuples, sorted.
    pub tuples: Vec<Tuple>,
}

/// One acknowledged commit.
#[derive(Clone, Debug)]
pub struct CommitReply {
    /// The newly published epoch.
    pub epoch: u64,
    /// The route answering queries from this epoch on.
    pub route: Route,
    /// Maintenance counters.
    pub stats: UpdateStats,
    /// Indices of monitored constraints violated after this commit
    /// (non-empty means the daemon degraded to the rectified route).
    pub violated: Vec<usize>,
    /// True when this commit re-consulted the cost planner (route
    /// transition or EDB drift past the replan threshold).
    pub replanned: bool,
}

/// A point-in-time counters snapshot ([`Server::stats`]).
#[derive(Clone, Copy, Debug)]
pub struct ServerStats {
    /// Commits acknowledged since startup (excluding replay).
    pub commits: u64,
    /// The newest published epoch.
    pub epoch: u64,
    /// The oldest still-pinnable epoch.
    pub oldest_epoch: u64,
    /// Requests admitted by the gate.
    pub admitted: u64,
    /// Requests shed with `Overloaded`.
    pub rejected: u64,
    /// Readers cancelled by the slow-reader watchdog.
    pub watchdog_cancelled: u64,
}

/// The single-writer state, held under one mutex so WAL append, apply,
/// and publish are a serial critical section.
struct WriterState {
    query: MaintainedQuery,
    wal: Option<Wal>,
    /// The epoch id the *next successful publish* will carry. Does not
    /// advance on a failed publish — the following publish subsumes.
    next_epoch: u64,
}

/// The serving daemon: shared between connection handlers via `Arc`.
pub struct Server {
    writer: Mutex<WriterState>,
    registry: EpochRegistry,
    admission: Arc<Admission>,
    cfg: ServeConfig,
    commits: AtomicU64,
}

/// Every relation visible right now: EDB first, then the IDB
/// materialization (authoritative for derived predicates).
fn live_relations(q: &MaintainedQuery) -> Vec<(Pred, &semrec_engine::Relation)> {
    let mut out: Vec<(Pred, &semrec_engine::Relation)> = q.db().iter().collect();
    out.extend(q.idb().iter().map(|(&p, r)| (p, r)));
    out
}

impl Server {
    /// Builds the daemon from a parsed unit: the EDB from its facts,
    /// the maintained materialization from its program + constraints.
    /// With a WAL path, surviving log records are replayed through the
    /// same parser and apply path as live traffic before the first
    /// epoch is published, so the daemon resumes exactly where the
    /// acknowledged history left off.
    pub fn open(
        unit: &Unit,
        cfg: ServeConfig,
        wal_path: Option<&Path>,
    ) -> Result<(Arc<Server>, RecoveryReport), ServeError> {
        let db = Database::from_facts(&unit.facts);
        let mut query = MaintainedQuery::new_tuned(
            db,
            &unit.program(),
            &unit.constraints,
            cfg.optimizer.clone(),
            cfg.tuning,
        )
        .map_err(|e| ServeError::Io(format!("initial materialization: {e}")))?;

        let mut report = RecoveryReport::default();
        let wal = match wal_path {
            None => None,
            Some(path) => {
                let (wal, replay) = Wal::open(path)?;
                report.truncated_tail = replay.truncated_tail;
                for (i, record) in replay.records.iter().enumerate() {
                    let txs = semrec_engine::incr::parse_txs(record).map_err(|msg| {
                        ServeError::WalCorrupt {
                            offset: 0,
                            detail: format!("record {i} does not parse: {msg}"),
                        }
                    })?;
                    for tx in &txs {
                        query
                            .apply(tx, Budget::unlimited(), None)
                            .map_err(ServeError::Engine)?;
                        report.replayed_commits += 1;
                    }
                }
                Some(wal)
            }
        };

        report.epoch = report.replayed_commits as u64;
        let route = query.route();
        let seed = EpochState {
            epoch: 0,
            route,
            rels: BTreeMap::new(),
        };
        let initial = seed.cow_successor(report.epoch, route, live_relations(&query).into_iter());
        let registry = EpochRegistry::new(initial, cfg.retain_epochs);
        let admission = Admission::new(cfg.admission);
        let server = Arc::new(Server {
            writer: Mutex::new(WriterState {
                query,
                wal,
                next_epoch: report.epoch + 1,
            }),
            registry,
            admission,
            cfg,
            commits: AtomicU64::new(0),
        });
        Ok((server, report))
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The admission gate (shared with the watchdog).
    pub fn admission(&self) -> &Arc<Admission> {
        &self.admission
    }

    /// The epoch registry.
    pub fn registry(&self) -> &EpochRegistry {
        &self.registry
    }

    /// Counters snapshot.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            commits: self.commits.load(Ordering::Relaxed),
            epoch: self.registry.latest().epoch,
            oldest_epoch: self.registry.oldest(),
            admitted: self.admission.admitted(),
            rejected: self.admission.rejected(),
            watchdog_cancelled: self.admission.watchdog_cancelled(),
        }
    }

    /// Answers `goal` at epoch `at` (`None` = latest) under admission
    /// control: the request may be shed with `Overloaded`, cancelled by
    /// the watchdog (surfacing `EpochReclaimed`), or cut off by its
    /// deadline — and otherwise returns exactly the pinned epoch's
    /// tuples, sorted.
    pub fn query(
        &self,
        goal: &Atom,
        at: Option<u64>,
        deadline: Option<Duration>,
    ) -> Result<QueryReply, ServeError> {
        let permit = self.admission.admit(deadline)?;
        #[cfg(feature = "failpoints")]
        semrec_engine::failpoint::hit("serve.reader")
            .map_err(|m| ServeError::Io(format!("reader: {m}")))?;
        let state = self.registry.pin(at)?;
        let tuples = self.scan(&state, goal, &permit)?;
        Ok(QueryReply {
            epoch: state.epoch,
            route: state.route,
            tuples,
        })
    }

    /// Scans the pinned snapshot for `goal`, polling cancellation and
    /// the deadline every [`POLL_EVERY_ROWS`] rows.
    fn scan(
        &self,
        state: &EpochState,
        goal: &Atom,
        permit: &Permit,
    ) -> Result<Vec<Tuple>, ServeError> {
        let Some(rel) = state.relation(goal.pred) else {
            return Ok(Vec::new());
        };
        let cancel = permit.cancel_token();
        let mut out = Vec::new();
        for (i, (_, row)) in rel.iter_range(rel.snapshot_rows()).enumerate() {
            if i % POLL_EVERY_ROWS == 0 {
                if cancel.is_cancelled() {
                    return Err(if permit.was_reclaimed() {
                        ServeError::EpochReclaimed {
                            requested: state.epoch,
                            oldest: self.registry.oldest(),
                        }
                    } else {
                        ServeError::Engine(semrec_engine::EngineError::Cancelled)
                    });
                }
                if permit.remaining() == Some(Duration::ZERO) {
                    return Err(ServeError::Overloaded {
                        inflight: 0,
                        limit: self.admission.config().max_inflight,
                        retry_after_ms: 1,
                    });
                }
            }
            if goal_matches(goal, row) {
                out.push(row.to_vec());
            }
        }
        out.sort();
        Ok(out)
    }

    /// Applies one transaction through the full commit pipeline: WAL
    /// append + fsync, maintained apply, copy-on-write epoch publish.
    /// Serialized with other writers; never blocked by readers.
    pub fn commit(&self, tx: &Tx) -> Result<CommitReply, ServeError> {
        let mut ws = self.writer.lock().expect("writer lock poisoned");
        let ws = &mut *ws;

        // 1. Durability first: the commit is acknowledged only after the
        //    record is on disk, and applied only after it is durable.
        let pre_len = ws.wal.as_ref().map(Wal::len);
        if let Some(wal) = ws.wal.as_mut() {
            wal.append_commit(&tx_to_stream(tx))?;
        }

        // 2. Apply. On failure the record written in step 1 is
        //    truncated back out, keeping WAL == applied history.
        let outcome = match ws.query.apply(tx, self.cfg.write_budget, None) {
            Ok(o) => o,
            Err(e) => {
                if let (Some(wal), Some(pre)) = (ws.wal.as_mut(), pre_len) {
                    wal.rollback_to(pre);
                }
                return Err(ServeError::Engine(e));
            }
        };

        // 3. Publish. Copy-on-write against the last *published* epoch:
        //    after a failed publish the diff naturally widens to cover
        //    the unpublished commits too.
        let epoch = ws.next_epoch;
        let prev = self.registry.latest();
        let successor =
            prev.cow_successor(epoch, outcome.route, live_relations(&ws.query).into_iter());
        self.registry.publish(successor)?;
        ws.next_epoch = epoch + 1;
        self.commits.fetch_add(1, Ordering::Relaxed);
        Ok(CommitReply {
            epoch,
            route: outcome.route,
            stats: outcome.stats,
            violated: outcome.violated,
            replanned: outcome.replanned,
        })
    }

    /// Spawns the slow-reader watchdog thread, sweeping at half the
    /// configured threshold. No-op (returns `None`) when the watchdog
    /// is disabled. The thread exits when the server is dropped.
    pub fn spawn_watchdog(self: &Arc<Self>) -> Option<std::thread::JoinHandle<()>> {
        let after = self.cfg.admission.watchdog_after?;
        let weak = Arc::downgrade(self);
        let interval = (after / 2).max(Duration::from_millis(1));
        Some(std::thread::spawn(move || {
            while let Some(server) = weak.upgrade() {
                server.admission.reap_slow(after);
                drop(server);
                std::thread::sleep(interval);
            }
        }))
    }

    /// Serves connections from a TCP listener, one thread per
    /// connection, until accept fails. The `serve.accept` failpoint
    /// drops the affected connection; the daemon keeps accepting.
    pub fn serve_listener(
        self: &Arc<Self>,
        listener: &std::net::TcpListener,
    ) -> std::io::Result<()> {
        use std::io::{BufRead, BufReader, Write};
        loop {
            let (stream, _) = listener.accept()?;
            #[cfg(feature = "failpoints")]
            if semrec_engine::failpoint::hit("serve.accept").is_err() {
                drop(stream);
                continue;
            }
            let server = Arc::clone(self);
            std::thread::spawn(move || {
                let mut conn = crate::protocol::Connection::new(server);
                let reader = BufReader::new(match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => return,
                });
                let mut out = stream;
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    match conn.handle_line(&line) {
                        crate::protocol::Response::None => {}
                        crate::protocol::Response::Lines(lines) => {
                            for l in lines {
                                if writeln!(out, "{l}").is_err() {
                                    return;
                                }
                            }
                            if out.flush().is_err() {
                                return;
                            }
                        }
                        crate::protocol::Response::Quit => return,
                    }
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datalog::parser::{parse_atom, parse_unit};
    use semrec_engine::int_tuple;

    fn chain_unit() -> Unit {
        parse_unit(
            "reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- edge(X, Z), reach(Z, Y).\n\
             edge(1, 2). edge(2, 3).",
        )
        .expect("parse")
    }

    #[test]
    fn readers_pin_their_epoch_across_commits() {
        let (server, report) = Server::open(&chain_unit(), ServeConfig::default(), None).unwrap();
        assert_eq!(report.epoch, 0);
        let goal = parse_atom("reach(1, Y)").unwrap();
        let r0 = server.query(&goal, None, None).unwrap();
        assert_eq!(r0.epoch, 0);
        assert_eq!(r0.tuples, vec![int_tuple(&[1, 2]), int_tuple(&[1, 3])]);

        let mut tx = Tx::new();
        tx.insert("edge", int_tuple(&[3, 4]));
        let c = server.commit(&tx).unwrap();
        assert_eq!(c.epoch, 1);

        // Latest sees the new fact; epoch 0 still answers as before.
        let r1 = server.query(&goal, None, None).unwrap();
        assert_eq!(r1.epoch, 1);
        assert!(r1.tuples.contains(&int_tuple(&[1, 4])));
        let r0_again = server.query(&goal, Some(0), None).unwrap();
        assert_eq!(r0_again.tuples, r0.tuples);
    }

    #[test]
    fn wal_replay_reconverges_after_restart() {
        let mut path = std::env::temp_dir();
        path.push(format!("semrec-serve-test-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let goal = parse_atom("reach(1, Y)").unwrap();
        let expect;
        {
            let (server, _) =
                Server::open(&chain_unit(), ServeConfig::default(), Some(&path)).unwrap();
            let mut tx = Tx::new();
            tx.insert("edge", int_tuple(&[3, 4]));
            server.commit(&tx).unwrap();
            let mut tx = Tx::new();
            tx.delete("edge", int_tuple(&[1, 2]));
            server.commit(&tx).unwrap();
            expect = server.query(&goal, None, None).unwrap().tuples;
        }
        let (server, report) =
            Server::open(&chain_unit(), ServeConfig::default(), Some(&path)).unwrap();
        assert_eq!(report.replayed_commits, 2);
        assert_eq!(report.epoch, 2);
        let got = server.query(&goal, None, None).unwrap();
        assert_eq!(got.tuples, expect, "replayed state == pre-restart state");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn query_on_missing_predicate_is_empty_not_error() {
        let (server, _) = Server::open(&chain_unit(), ServeConfig::default(), None).unwrap();
        let goal = parse_atom("nosuch(X)").unwrap();
        assert!(server.query(&goal, None, None).unwrap().tuples.is_empty());
    }
}
