//! The daemon core: one writer applying transactions through the
//! maintained incremental path, many readers answering against pinned
//! epoch snapshots.
//!
//! ## Commit ordering
//!
//! ```text
//! WAL append + fsync  →  MaintainedQuery::apply  →  COW epoch publish
//! ```
//!
//! * An append/fsync failure rejects the commit before anything is
//!   applied — the log rolls back to its pre-append length.
//! * An apply failure (budget trip, injected fault) truncates the
//!   just-written record back out of the log, so the WAL and the applied
//!   history stay byte-for-byte in step; `MaintainedQuery::apply` is
//!   itself atomic-on-error, so the in-memory state is untouched too.
//! * A publish failure (injected `snapshot.publish` fault) leaves the
//!   commit durable *and* applied but unpublished: the epoch id does not
//!   advance, and the next successful publish — whose copy-on-write diff
//!   is taken against the last *published* epoch — subsumes it. Readers
//!   meanwhile keep answering at the last published epoch, which is a
//!   consistent (merely stale) snapshot.
//! * A crash between fsync and apply leaves the record in the log;
//!   replay re-applies it on restart. Restart state is *defined* as the
//!   serial replay of the surviving log, so this is convergent, not a
//!   divergence.
//!
//! Readers take no part in any of this: a read pins an epoch `Arc` out
//! of the registry (a pointer clone under a briefly-held read lock) and
//! scans frozen relations. The writer's mutex is never on a read path.

use crate::admission::{Admission, AdmissionConfig, Permit};
use crate::cache::{relation_stamp, AnswerCache, GoalShape};
use crate::epoch::{EpochRegistry, EpochState};
use crate::error::ServeError;
use crate::wal::Wal;
use semrec_core::{MaintainedQuery, OptimizerConfig};
use semrec_datalog::atom::{Atom, Pred};
use semrec_datalog::parser::Unit;
use semrec_engine::eval::{answer_goal_polled, goal_matches};
use semrec_engine::{tx_to_stream, Budget, Database, Route, Tuning, Tuple, Tx, UpdateStats};
use std::collections::{BTreeMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How often a reader's scan loop polls its cancel token and deadline.
const POLL_EVERY_ROWS: usize = 1024;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Evaluator tuning (threads × cutover × kernels) for the initial
    /// materialization and every maintenance pass.
    pub tuning: Tuning,
    /// Optimizer configuration for the maintained plan.
    pub optimizer: OptimizerConfig,
    /// Admission gate configuration.
    pub admission: AdmissionConfig,
    /// How many published epochs stay pinnable (at least 1).
    pub retain_epochs: usize,
    /// Budget applied to each transaction's maintenance work.
    pub write_budget: Budget,
    /// Route bound query goals through the dictionary index
    /// ([`semrec_engine::eval::answer_goal_polled`]) instead of scanning
    /// the whole relation. All-free goals always scan.
    pub index_reads: bool,
    /// Memoize query answers per `(goal shape, relation generation)`
    /// ([`crate::cache`]); copy-on-write publication invalidates exactly
    /// the changed predicates.
    pub answer_cache: bool,
    /// Answer-cache entry bound (FIFO eviction).
    pub cache_capacity: usize,
    /// Group concurrent commits into one maintenance pass: one WAL
    /// fsync window, one apply sweep, one epoch publication — with
    /// per-transaction acknowledgements and atomicity preserved.
    pub batch_commits: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tuning: Tuning::default(),
            optimizer: OptimizerConfig::default(),
            admission: AdmissionConfig::default(),
            retain_epochs: 8,
            write_budget: Budget::unlimited(),
            index_reads: true,
            answer_cache: true,
            cache_capacity: 1024,
            batch_commits: true,
        }
    }
}

/// What [`Server::open`] recovered before going live.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryReport {
    /// Committed transactions replayed from the WAL.
    pub replayed_commits: usize,
    /// Byte offset a torn trailing WAL record was truncated back to,
    /// if one was found.
    pub truncated_tail: Option<u64>,
    /// The epoch the daemon starts serving at (the replayed commit
    /// count; epochs are process-local).
    pub epoch: u64,
}

/// One answered query.
#[derive(Clone, Debug)]
pub struct QueryReply {
    /// The epoch the answer is exact at.
    pub epoch: u64,
    /// The route that materialized the relations at that epoch.
    pub route: Route,
    /// Matching tuples, sorted.
    pub tuples: Vec<Tuple>,
}

/// One acknowledged commit.
#[derive(Clone, Debug)]
pub struct CommitReply {
    /// The newly published epoch.
    pub epoch: u64,
    /// The route answering queries from this epoch on.
    pub route: Route,
    /// Maintenance counters.
    pub stats: UpdateStats,
    /// Indices of monitored constraints violated after this commit
    /// (non-empty means the daemon degraded to the rectified route).
    pub violated: Vec<usize>,
    /// True when this commit re-consulted the cost planner (route
    /// transition or EDB drift past the replan threshold).
    pub replanned: bool,
}

/// A point-in-time counters snapshot ([`Server::stats`]).
#[derive(Clone, Copy, Debug)]
pub struct ServerStats {
    /// Commits acknowledged since startup (excluding replay).
    pub commits: u64,
    /// The newest published epoch.
    pub epoch: u64,
    /// The oldest still-pinnable epoch.
    pub oldest_epoch: u64,
    /// Requests admitted by the gate.
    pub admitted: u64,
    /// Requests shed with `Overloaded`.
    pub rejected: u64,
    /// Readers cancelled by the slow-reader watchdog.
    pub watchdog_cancelled: u64,
    /// Queries answered from the epoch answer cache.
    pub cache_hits: u64,
    /// Cache lookups that had to compute their answer.
    pub cache_misses: u64,
    /// Commit batches processed (a serial commit is a batch of one).
    pub batches: u64,
    /// Transactions carried by those batches.
    pub batched_txs: u64,
}

/// The single-writer state, held under one mutex so WAL append, apply,
/// and publish are a serial critical section.
struct WriterState {
    query: MaintainedQuery,
    wal: Option<Wal>,
    /// The epoch id the *next successful publish* will carry. Does not
    /// advance on a failed publish — the following publish subsumes.
    next_epoch: u64,
}

/// One queued transaction awaiting group commit: the transaction plus
/// the slot its acknowledgement lands in. Whichever writer drains the
/// queue (the batch *leader*) fills every slot; follower writers sleep
/// on the leadership condvar and find their result filled when the
/// leader hands off.
struct CommitSlot {
    tx: Tx,
    done: Mutex<Option<Result<CommitReply, ServeError>>>,
}

impl CommitSlot {
    fn new(tx: Tx) -> Arc<CommitSlot> {
        Arc::new(CommitSlot {
            tx,
            done: Mutex::new(None),
        })
    }

    fn fill(&self, result: Result<CommitReply, ServeError>) {
        *self.done.lock().expect("slot lock") = Some(result);
    }

    fn take(&self) -> Option<Result<CommitReply, ServeError>> {
        self.done.lock().expect("slot lock").take()
    }
}

/// The group-commit queue: transactions waiting for a leader, plus
/// whether a leader is currently processing a batch. Guarded by one
/// mutex whose condvar broadcasts leadership changes — followers wait
/// *here*, never on the writer mutex, so batch formation is bounded by
/// writer concurrency rather than by mutex handoff fairness.
struct BatchQueue {
    queue: VecDeque<Arc<CommitSlot>>,
    leader_active: bool,
}

/// The serving daemon: shared between connection handlers via `Arc`.
pub struct Server {
    writer: Mutex<WriterState>,
    registry: EpochRegistry,
    admission: Arc<Admission>,
    cfg: ServeConfig,
    commits: AtomicU64,
    cache: AnswerCache,
    /// Commits waiting for a batch leader; while a leader processes a
    /// batch, every arriving commit queues here and the leader's next
    /// successor sweeps them all into one maintenance pass.
    pending: Mutex<BatchQueue>,
    /// Broadcast on every leadership release; followers wait on it.
    leader_change: Condvar,
    batches: AtomicU64,
    batched_txs: AtomicU64,
}

/// Every relation visible right now: EDB first, then the IDB
/// materialization (authoritative for derived predicates).
fn live_relations(q: &MaintainedQuery) -> Vec<(Pred, &semrec_engine::Relation)> {
    let mut out: Vec<(Pred, &semrec_engine::Relation)> = q.db().iter().collect();
    out.extend(q.idb().iter().map(|(&p, r)| (p, r)));
    out
}

impl Server {
    /// Builds the daemon from a parsed unit: the EDB from its facts,
    /// the maintained materialization from its program + constraints.
    /// With a WAL path, surviving log records are replayed through the
    /// same parser and apply path as live traffic before the first
    /// epoch is published, so the daemon resumes exactly where the
    /// acknowledged history left off.
    pub fn open(
        unit: &Unit,
        cfg: ServeConfig,
        wal_path: Option<&Path>,
    ) -> Result<(Arc<Server>, RecoveryReport), ServeError> {
        let db = Database::from_facts(&unit.facts);
        let mut query = MaintainedQuery::new_tuned(
            db,
            &unit.program(),
            &unit.constraints,
            cfg.optimizer.clone(),
            cfg.tuning,
        )
        .map_err(|e| ServeError::Io(format!("initial materialization: {e}")))?;

        let mut report = RecoveryReport::default();
        let wal = match wal_path {
            None => None,
            Some(path) => {
                let (wal, replay) = Wal::open(path)?;
                report.truncated_tail = replay.truncated_tail;
                for (i, record) in replay.records.iter().enumerate() {
                    let txs = semrec_engine::incr::parse_txs(record).map_err(|msg| {
                        ServeError::WalCorrupt {
                            offset: 0,
                            detail: format!("record {i} does not parse: {msg}"),
                        }
                    })?;
                    for tx in &txs {
                        query
                            .apply(tx, Budget::unlimited(), None)
                            .map_err(ServeError::Engine)?;
                        report.replayed_commits += 1;
                    }
                }
                Some(wal)
            }
        };

        report.epoch = report.replayed_commits as u64;
        let route = query.route();
        let seed = EpochState {
            epoch: 0,
            route,
            rels: BTreeMap::new(),
        };
        let initial = seed.cow_successor(report.epoch, route, live_relations(&query).into_iter());
        let registry = EpochRegistry::new(initial, cfg.retain_epochs);
        let admission = Admission::new(cfg.admission);
        let cache = AnswerCache::new(cfg.cache_capacity);
        let server = Arc::new(Server {
            writer: Mutex::new(WriterState {
                query,
                wal,
                next_epoch: report.epoch + 1,
            }),
            registry,
            admission,
            cfg,
            commits: AtomicU64::new(0),
            cache,
            pending: Mutex::new(BatchQueue {
                queue: VecDeque::new(),
                leader_active: false,
            }),
            leader_change: Condvar::new(),
            batches: AtomicU64::new(0),
            batched_txs: AtomicU64::new(0),
        });
        Ok((server, report))
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The admission gate (shared with the watchdog).
    pub fn admission(&self) -> &Arc<Admission> {
        &self.admission
    }

    /// The epoch registry.
    pub fn registry(&self) -> &EpochRegistry {
        &self.registry
    }

    /// Counters snapshot.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            commits: self.commits.load(Ordering::Relaxed),
            epoch: self.registry.latest().epoch,
            oldest_epoch: self.registry.oldest(),
            admitted: self.admission.admitted(),
            rejected: self.admission.rejected(),
            watchdog_cancelled: self.admission.watchdog_cancelled(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            batches: self.batches.load(Ordering::Relaxed),
            batched_txs: self.batched_txs.load(Ordering::Relaxed),
        }
    }

    /// Answers `goal` at epoch `at` (`None` = latest) under admission
    /// control: the request may be shed with `Overloaded`, cancelled by
    /// the watchdog (surfacing `EpochReclaimed`), or cut off by its
    /// deadline — and otherwise returns exactly the pinned epoch's
    /// tuples, sorted.
    ///
    /// With [`ServeConfig::answer_cache`] on, a repeated goal shape
    /// against an unchanged relation generation is served straight from
    /// the cache; with [`ServeConfig::index_reads`] on, a computed
    /// answer routes bound goal arguments through the snapshot's
    /// dictionary index instead of scanning.
    pub fn query(
        &self,
        goal: &Atom,
        at: Option<u64>,
        deadline: Option<Duration>,
    ) -> Result<QueryReply, ServeError> {
        let permit = self.admission.admit(deadline)?;
        #[cfg(feature = "failpoints")]
        semrec_engine::failpoint::hit("serve.reader")
            .map_err(|m| ServeError::Io(format!("reader: {m}")))?;
        let state = self.registry.pin(at)?;
        let stamp = state
            .relation(goal.pred)
            .and_then(|r| relation_stamp(r.as_ref()));
        let shape = self.cfg.answer_cache.then(|| GoalShape::of(goal));
        if let Some(shape) = &shape {
            if let Some(cached) = self.cache.get(shape, stamp) {
                return Ok(QueryReply {
                    epoch: state.epoch,
                    route: state.route,
                    tuples: (*cached).clone(),
                });
            }
        }
        let mut tuples = if self.cfg.index_reads {
            self.answer(&state, goal, &permit)?
        } else {
            self.scan(&state, goal, &permit)?
        };
        tuples.sort();
        if let Some(shape) = shape {
            self.cache.insert(shape, stamp, Arc::new(tuples.clone()));
        }
        Ok(QueryReply {
            epoch: state.epoch,
            route: state.route,
            tuples,
        })
    }

    /// The typed abort for a cancelled/expired read permit, shared by
    /// the indexed and scan paths.
    fn read_aborted(&self, state: &EpochState, permit: &Permit) -> Option<ServeError> {
        if permit.cancel_token().is_cancelled() {
            return Some(if permit.was_reclaimed() {
                ServeError::EpochReclaimed {
                    requested: state.epoch,
                    oldest: self.registry.oldest(),
                }
            } else {
                ServeError::Engine(semrec_engine::EngineError::Cancelled)
            });
        }
        if permit.remaining() == Some(Duration::ZERO) {
            return Some(ServeError::Overloaded {
                inflight: 0,
                limit: self.admission.config().max_inflight,
                retry_after_ms: 1,
            });
        }
        None
    }

    /// Index-routed goal answering against the pinned snapshot: bound
    /// arguments probe the relation's dictionary index, all-free goals
    /// fall back to the scan inside [`answer_goal_polled`]. Cancellation
    /// and the deadline are polled on the same row cadence as the scan
    /// path.
    fn answer(
        &self,
        state: &EpochState,
        goal: &Atom,
        permit: &Permit,
    ) -> Result<Vec<Tuple>, ServeError> {
        let Some(rel) = state.relation(goal.pred) else {
            return Ok(Vec::new());
        };
        answer_goal_polled(rel, goal, rel.snapshot_rows(), |_| {
            match self.read_aborted(state, permit) {
                Some(e) => Err(e),
                None => Ok(()),
            }
        })
    }

    /// Scans the pinned snapshot for `goal`, polling cancellation and
    /// the deadline every [`POLL_EVERY_ROWS`] rows. The fallback read
    /// path ([`ServeConfig::index_reads`] off) and the reference the
    /// agreement suites compare the indexed path against.
    fn scan(
        &self,
        state: &EpochState,
        goal: &Atom,
        permit: &Permit,
    ) -> Result<Vec<Tuple>, ServeError> {
        let Some(rel) = state.relation(goal.pred) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for (i, (_, row)) in rel.iter_range(rel.snapshot_rows()).enumerate() {
            if i % POLL_EVERY_ROWS == 0 {
                if let Some(e) = self.read_aborted(state, permit) {
                    return Err(e);
                }
            }
            if goal_matches(goal, row) {
                out.push(row.to_vec());
            }
        }
        Ok(out)
    }

    /// Applies one transaction through the full commit pipeline: WAL
    /// append + fsync, maintained apply, copy-on-write epoch publish.
    /// Serialized with other writers; never blocked by readers.
    ///
    /// With [`ServeConfig::batch_commits`] on, concurrent callers are
    /// group-committed: each enqueues its transaction; the first to see
    /// no active leader elects itself and sweeps the whole queue into
    /// **one** maintenance pass — one WAL fsync window, one apply
    /// sweep, one epoch publication — filling per-transaction
    /// acknowledgement slots, while the rest sleep on the leadership
    /// condvar (never on the writer mutex, whose unfair handoff would
    /// otherwise cap batches at two and starve waiters). A serial
    /// caller simply leads a batch of one, so uncontended behavior
    /// (latency, epoch numbering) is unchanged.
    pub fn commit(&self, tx: &Tx) -> Result<CommitReply, ServeError> {
        if !self.cfg.batch_commits {
            let mut ws = self.writer.lock().expect("writer lock poisoned");
            return self.commit_one(&mut ws, tx);
        }
        let slot = CommitSlot::new(tx.clone());
        let mut q = self.pending.lock().expect("pending lock");
        q.queue.push_back(Arc::clone(&slot));
        loop {
            // A leader that drained our slot fills it before releasing
            // leadership, so this check (under the pending lock) never
            // races a fill.
            if let Some(result) = slot.take() {
                return result;
            }
            if !q.leader_active {
                q.leader_active = true;
                let batch: Vec<Arc<CommitSlot>> = q.queue.drain(..).collect();
                drop(q);
                let mut ws = self.writer.lock().expect("writer lock poisoned");
                self.process_batch(&mut ws, &batch);
                drop(ws);
                self.pending.lock().expect("pending lock").leader_active = false;
                self.leader_change.notify_all();
                return slot.take().expect("leader's slot filled by its own batch");
            }
            q = self.leader_change.wait(q).expect("pending lock");
        }
    }

    /// Commits `txs` as one explicit batch (one fsync window, one
    /// publish, one epoch), returning per-transaction acknowledgements
    /// in order. The deterministic entry point the fault suites and the
    /// write benchmark use; [`Server::commit`] reaches the same pipeline
    /// through the concurrent queue.
    pub fn commit_many(&self, txs: &[Tx]) -> Vec<Result<CommitReply, ServeError>> {
        let slots: Vec<Arc<CommitSlot>> =
            txs.iter().map(|tx| CommitSlot::new(tx.clone())).collect();
        let mut ws = self.writer.lock().expect("writer lock poisoned");
        self.process_batch(&mut ws, &slots);
        drop(ws);
        slots
            .iter()
            .map(|s| s.take().expect("batch filled every slot"))
            .collect()
    }

    /// The unbatched pipeline ([`ServeConfig::batch_commits`] off).
    fn commit_one(&self, ws: &mut WriterState, tx: &Tx) -> Result<CommitReply, ServeError> {
        // 1. Durability first: the commit is acknowledged only after the
        //    record is on disk, and applied only after it is durable.
        let pre_len = ws.wal.as_ref().map(Wal::len);
        if let Some(wal) = ws.wal.as_mut() {
            wal.append_commit(&tx_to_stream(tx))?;
        }

        // 2. Apply. On failure the record written in step 1 is
        //    truncated back out, keeping WAL == applied history.
        let outcome = match ws.query.apply(tx, self.cfg.write_budget, None) {
            Ok(o) => o,
            Err(e) => {
                if let (Some(wal), Some(pre)) = (ws.wal.as_mut(), pre_len) {
                    wal.rollback_to(pre);
                }
                return Err(ServeError::Engine(e));
            }
        };

        // 3. Publish. Copy-on-write against the last *published* epoch:
        //    after a failed publish the diff naturally widens to cover
        //    the unpublished commits too.
        let epoch = ws.next_epoch;
        let prev = self.registry.latest();
        let successor =
            prev.cow_successor(epoch, outcome.route, live_relations(&ws.query).into_iter());
        self.registry.publish(successor)?;
        ws.next_epoch = epoch + 1;
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_txs.fetch_add(1, Ordering::Relaxed);
        Ok(CommitReply {
            epoch,
            route: outcome.route,
            stats: outcome.stats,
            violated: outcome.violated,
            replanned: outcome.replanned,
        })
    }

    /// The group-commit pipeline. Per-transaction atomicity holds
    /// throughout: a transaction whose WAL append or apply fails is
    /// *condemned* — it alone gets its error, its record is kept out of
    /// the durable log, and `MaintainedQuery::apply`'s atomic-on-error
    /// guarantee keeps it out of memory — while the rest of the batch
    /// commits normally. Acknowledgements are written only after the
    /// batch's final fsync, so the acknowledged set is always a durable
    /// prefix-consistent subset of the log.
    fn process_batch(&self, ws: &mut WriterState, batch: &[Arc<CommitSlot>]) {
        if batch.is_empty() {
            return;
        }
        let batch_start = ws.wal.as_ref().map(Wal::len);

        // Phase A: append every record, fsyncing nothing yet. An append
        // failure (injected `wal.append` fault, real I/O error) condemns
        // only its own transaction — the partial frame is scrubbed and
        // the next record starts on a clean boundary.
        let mut condemned: Vec<Option<ServeError>> = vec![None; batch.len()];
        let mut payloads: Vec<String> = Vec::with_capacity(batch.len());
        for (i, slot) in batch.iter().enumerate() {
            let payload = tx_to_stream(&slot.tx);
            if let Some(wal) = ws.wal.as_mut() {
                if let Err(e) = wal.append_record(&payload) {
                    condemned[i] = Some(e);
                }
            }
            payloads.push(payload);
        }

        // Phase B: one fsync for the whole batch. On failure nothing
        // has been applied, so rejecting every transaction keeps the
        // acknowledged history exactly equal to the applied history;
        // the log is truncated back to the batch start.
        if let Some(wal) = ws.wal.as_mut() {
            if let Err(e) = wal.sync() {
                if let Some(start) = batch_start {
                    wal.rollback_to(start);
                }
                for slot in batch {
                    slot.fill(Err(e.clone()));
                }
                self.batches.fetch_add(1, Ordering::Relaxed);
                self.batched_txs
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                return;
            }
        }

        // Phase C: apply the surviving transactions in queue order.
        // `MaintainedQuery::apply` is atomic-on-error, so a failed apply
        // condemns its transaction without touching the shared state.
        let mut outcomes: Vec<Option<semrec_core::UpdateOutcome>> = vec![None; batch.len()];
        let mut rewrite = false;
        for (i, slot) in batch.iter().enumerate() {
            if condemned[i].is_some() {
                continue;
            }
            match ws.query.apply(&slot.tx, self.cfg.write_budget, None) {
                Ok(o) => outcomes[i] = Some(o),
                Err(e) => {
                    condemned[i] = Some(ServeError::Engine(e));
                    // Its record is durable but must not replay.
                    rewrite = true;
                }
            }
        }

        // Phase D: when an already-durable record was condemned in
        // phase C, rewrite the batch's log tail to exactly the applied
        // set and re-sync, restoring WAL == applied history before any
        // acknowledgement. If the rewrite itself fails the log poisons
        // (refusing later commits) and the whole batch — survivors
        // included — is answered with the error: like a failed publish,
        // a commit may end up applied-but-errored, but never
        // acknowledged-and-lost.
        if rewrite {
            if let (Some(wal), Some(start)) = (ws.wal.as_mut(), batch_start) {
                wal.rollback_to(start);
                let mut rewrite_failed = None;
                for (i, payload) in payloads.iter().enumerate() {
                    if condemned[i].is_none() {
                        if let Err(e) = wal.append_record(payload) {
                            rewrite_failed = Some(e);
                            break;
                        }
                    }
                }
                if rewrite_failed.is_none() {
                    rewrite_failed = wal.sync().err();
                }
                if let Some(e) = rewrite_failed {
                    for (i, slot) in batch.iter().enumerate() {
                        slot.fill(Err(condemned[i].take().unwrap_or_else(|| e.clone())));
                    }
                    self.batches.fetch_add(1, Ordering::Relaxed);
                    self.batched_txs
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    return;
                }
            }
        }

        // Phase E: one copy-on-write publication for the whole batch;
        // every committed transaction shares the new epoch. A publish
        // failure leaves the batch durable and applied but errored —
        // the next successful publish subsumes it (same contract as the
        // unbatched pipeline).
        let applied_any = outcomes.iter().any(Option::is_some);
        let mut publish_err = None;
        let mut epoch = self.registry.latest().epoch;
        if applied_any {
            epoch = ws.next_epoch;
            let route = ws.query.route();
            let prev = self.registry.latest();
            let successor = prev.cow_successor(epoch, route, live_relations(&ws.query).into_iter());
            match self.registry.publish(successor) {
                Ok(_) => ws.next_epoch = epoch + 1,
                Err(e) => publish_err = Some(e),
            }
        }

        for (i, slot) in batch.iter().enumerate() {
            if let Some(e) = condemned[i].take() {
                slot.fill(Err(e));
            } else if let Some(e) = &publish_err {
                slot.fill(Err(e.clone()));
            } else if let Some(outcome) = outcomes[i].take() {
                self.commits.fetch_add(1, Ordering::Relaxed);
                slot.fill(Ok(CommitReply {
                    epoch,
                    route: outcome.route,
                    stats: outcome.stats,
                    violated: outcome.violated,
                    replanned: outcome.replanned,
                }));
            } else {
                // No WAL, no apply — unreachable, but fail safe.
                slot.fill(Err(ServeError::Io("batch slot unprocessed".to_string())));
            }
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_txs
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
    }

    /// Spawns the slow-reader watchdog thread, sweeping at half the
    /// configured threshold. No-op (returns `None`) when the watchdog
    /// is disabled. The thread exits when the server is dropped.
    pub fn spawn_watchdog(self: &Arc<Self>) -> Option<std::thread::JoinHandle<()>> {
        let after = self.cfg.admission.watchdog_after?;
        let weak = Arc::downgrade(self);
        let interval = (after / 2).max(Duration::from_millis(1));
        Some(std::thread::spawn(move || {
            while let Some(server) = weak.upgrade() {
                server.admission.reap_slow(after);
                drop(server);
                std::thread::sleep(interval);
            }
        }))
    }

    /// Serves connections from a TCP listener, one thread per
    /// connection, until accept fails. The `serve.accept` failpoint
    /// drops the affected connection; the daemon keeps accepting.
    pub fn serve_listener(
        self: &Arc<Self>,
        listener: &std::net::TcpListener,
    ) -> std::io::Result<()> {
        use std::io::{BufRead, BufReader, Write};
        loop {
            let (stream, _) = listener.accept()?;
            #[cfg(feature = "failpoints")]
            if semrec_engine::failpoint::hit("serve.accept").is_err() {
                drop(stream);
                continue;
            }
            let server = Arc::clone(self);
            std::thread::spawn(move || {
                let mut conn = crate::protocol::Connection::new(server);
                let reader = BufReader::new(match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => return,
                });
                let mut out = stream;
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    match conn.handle_line(&line) {
                        crate::protocol::Response::None => {}
                        crate::protocol::Response::Lines(lines) => {
                            for l in lines {
                                if writeln!(out, "{l}").is_err() {
                                    return;
                                }
                            }
                            if out.flush().is_err() {
                                return;
                            }
                        }
                        crate::protocol::Response::Quit => return,
                    }
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datalog::parser::{parse_atom, parse_unit};
    use semrec_engine::int_tuple;

    fn chain_unit() -> Unit {
        parse_unit(
            "reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- edge(X, Z), reach(Z, Y).\n\
             edge(1, 2). edge(2, 3).",
        )
        .expect("parse")
    }

    #[test]
    fn readers_pin_their_epoch_across_commits() {
        let (server, report) = Server::open(&chain_unit(), ServeConfig::default(), None).unwrap();
        assert_eq!(report.epoch, 0);
        let goal = parse_atom("reach(1, Y)").unwrap();
        let r0 = server.query(&goal, None, None).unwrap();
        assert_eq!(r0.epoch, 0);
        assert_eq!(r0.tuples, vec![int_tuple(&[1, 2]), int_tuple(&[1, 3])]);

        let mut tx = Tx::new();
        tx.insert("edge", int_tuple(&[3, 4]));
        let c = server.commit(&tx).unwrap();
        assert_eq!(c.epoch, 1);

        // Latest sees the new fact; epoch 0 still answers as before.
        let r1 = server.query(&goal, None, None).unwrap();
        assert_eq!(r1.epoch, 1);
        assert!(r1.tuples.contains(&int_tuple(&[1, 4])));
        let r0_again = server.query(&goal, Some(0), None).unwrap();
        assert_eq!(r0_again.tuples, r0.tuples);
    }

    #[test]
    fn wal_replay_reconverges_after_restart() {
        let mut path = std::env::temp_dir();
        path.push(format!("semrec-serve-test-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let goal = parse_atom("reach(1, Y)").unwrap();
        let expect;
        {
            let (server, _) =
                Server::open(&chain_unit(), ServeConfig::default(), Some(&path)).unwrap();
            let mut tx = Tx::new();
            tx.insert("edge", int_tuple(&[3, 4]));
            server.commit(&tx).unwrap();
            let mut tx = Tx::new();
            tx.delete("edge", int_tuple(&[1, 2]));
            server.commit(&tx).unwrap();
            expect = server.query(&goal, None, None).unwrap().tuples;
        }
        let (server, report) =
            Server::open(&chain_unit(), ServeConfig::default(), Some(&path)).unwrap();
        assert_eq!(report.replayed_commits, 2);
        assert_eq!(report.epoch, 2);
        let got = server.query(&goal, None, None).unwrap();
        assert_eq!(got.tuples, expect, "replayed state == pre-restart state");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn query_on_missing_predicate_is_empty_not_error() {
        let (server, _) = Server::open(&chain_unit(), ServeConfig::default(), None).unwrap();
        let goal = parse_atom("nosuch(X)").unwrap();
        assert!(server.query(&goal, None, None).unwrap().tuples.is_empty());
    }
}
