//! Examples 3.2/4.2's university database: professors who co-work inherit
//! expertise (ic1, driving atom elimination on the recursive `eval`
//! program) and large stipends imply doctoral students (ic2, driving the
//! introduction of the small `doctoral` relation into `eval_support`).

use crate::rng::Rng;
use semrec_datalog::term::Value;
use semrec_engine::Database;

/// The scenario program and ICs (Examples 3.2 and 4.2).
pub const PROGRAM: &str = "
    eval(P, S, T) :- super(P, S, T).
    eval(P, S, T) :- works_with(P, P1), eval(P1, S, T), expert(P, F), field(T, F).
    eval_support(P, S, T, M) :- eval(P, S, T), pays(M, G, S, T).
    ic ic1: works_with(P2, P1), expert(P1, F1) -> expert(P2, F1).
    ic ic2: pays(M, G, S, T), M > 10000 -> doctoral(S).
";

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct UniversityParams {
    /// Number of professors.
    pub professors: usize,
    /// Number of students (each with one thesis).
    pub students: usize,
    /// Number of research fields.
    pub fields: usize,
    /// Length of each `works_with` collaboration chain.
    pub chain_len: usize,
    /// Fraction of students paid more than $10,000 (all made doctoral).
    pub rich_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UniversityParams {
    fn default() -> Self {
        UniversityParams {
            professors: 60,
            students: 120,
            fields: 8,
            chain_len: 4,
            rich_frac: 0.2,
            seed: 42,
        }
    }
}

fn prof(i: usize) -> Value {
    Value::str(&format!("prof{i}"))
}

fn student(i: usize) -> Value {
    Value::str(&format!("stud{i}"))
}

fn thesis(i: usize) -> Value {
    Value::str(&format!("thesis{i}"))
}

fn field_v(i: usize) -> Value {
    Value::str(&format!("field{i}"))
}

/// Generates an IC-consistent university database.
///
/// Professors are grouped into `works_with` chains (`p0 → p1 → … `, edge
/// direction as in ic1's premise `works_with(P2, P1)`); the most junior
/// member of each chain seeds an expertise, and `expert` is closed under
/// ic1 (everyone upstream inherits it). Students with stipends above
/// $10,000 are all inserted into `doctoral` (enforcing ic2).
pub fn generate(params: &UniversityParams) -> Database {
    let mut rng = Rng::seed_from_u64(params.seed);
    let mut db = Database::new();
    let np = params.professors.max(2);
    let ns = params.students.max(1);
    let nf = params.fields.max(1);
    let chain = params.chain_len.max(1);

    // works_with chains and seeded expertise.
    let mut expert: Vec<Vec<usize>> = vec![Vec::new(); np]; // fields per prof
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for start in (0..np).step_by(chain) {
        let end = (start + chain).min(np);
        for p in start..end.saturating_sub(1) {
            // works_with(P2, P1): P2 = p, P1 = p + 1.
            edges.push((p, p + 1));
            db.insert("works_with", vec![prof(p), prof(p + 1)]);
        }
        // The junior (last) member knows one field; some others get a
        // second seed to vary closure sizes.
        let f = rng.gen_range(0..nf);
        expert[end - 1].push(f);
        if rng.gen_bool(0.3) {
            expert[start].push(rng.gen_range(0..nf));
        }
    }
    // Close expert under ic1: expert(P1, F) ∧ works_with(P2, P1) ⇒
    // expert(P2, F).
    loop {
        let mut changed = false;
        for &(p2, p1) in &edges {
            let fields: Vec<usize> = expert[p1].clone();
            for f in fields {
                if !expert[p2].contains(&f) {
                    expert[p2].push(f);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (p, fs) in expert.iter().enumerate() {
        for &f in fs {
            db.insert("expert", vec![prof(p), field_v(f)]);
        }
    }

    // Students, theses, fields, supervisors, stipends.
    for s in 0..ns {
        let f = rng.gen_range(0..nf);
        db.insert("field", vec![thesis(s), field_v(f)]);
        let sup = rng.gen_range(0..np);
        db.insert("super", vec![prof(sup), student(s), thesis(s)]);
        let rich = rng.gen_bool(params.rich_frac.clamp(0.0, 1.0));
        let amount = if rich {
            rng.gen_range(10_001..30_000i64)
        } else {
            rng.gen_range(1_000..=10_000i64)
        };
        let grant = Value::str(&format!("grant{}", rng.gen_range(0..np)));
        db.insert(
            "pays",
            vec![Value::Int(amount), grant, student(s), thesis(s)],
        );
        if amount > 10_000 {
            db.insert("doctoral", vec![student(s)]); // enforce ic2
        } else if rng.gen_bool(0.1) {
            db.insert("doctoral", vec![student(s)]);
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_scenario;

    #[test]
    fn generated_db_satisfies_ics() {
        let s = parse_scenario(PROGRAM);
        for seed in [3, 11, 2024] {
            let db = generate(&UniversityParams {
                seed,
                ..UniversityParams::default()
            });
            for ic in &s.constraints {
                assert!(db.satisfies(ic), "seed {seed} violates {ic}");
            }
        }
    }

    #[test]
    fn expertise_is_closed_upstream() {
        let db = generate(&UniversityParams::default());
        // Every chain head must know at least the junior's field.
        assert!(db.count("expert") >= db.count("works_with"));
    }

    #[test]
    fn doctoral_is_small_relative_to_pays() {
        let db = generate(&UniversityParams {
            rich_frac: 0.1,
            ..UniversityParams::default()
        });
        assert!(db.count("doctoral") < db.count("pays"));
    }

    #[test]
    fn deterministic_in_seed() {
        let p = UniversityParams::default();
        assert_eq!(generate(&p), generate(&p));
    }
}
