//! Constraint repair (a bounded chase): turns an arbitrary database into
//! one satisfying a set of ICs, so randomized tests can exercise the
//! optimizer on arbitrary (program, IC, data) combinations.
//!
//! * atom-head ICs (tuple-generating): the implied fact is added; head
//!   variables not bound by the body receive a fresh labelled null
//!   (an interned `null<n>` constant);
//! * comparison-head ICs and denials: one body fact of each violation is
//!   removed (the first atom's match), which may cascade — hence the
//!   round limit.

use semrec_datalog::constraint::{Constraint, IcHead};
use semrec_datalog::subst::Subst;
use semrec_datalog::term::{Term, Value};
use semrec_engine::{Database, Tuple};

/// The outcome of a repair run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RepairOutcome {
    /// All constraints hold.
    Satisfied,
    /// The round budget was exhausted first (e.g. a diverging chase).
    BudgetExhausted,
}

/// Repairs `db` in place against `ics`, with at most `max_rounds` passes.
pub fn repair(db: &mut Database, ics: &[Constraint], max_rounds: usize) -> RepairOutcome {
    let mut null_counter = 0usize;
    for _ in 0..max_rounds {
        let mut changed = false;
        for ic in ics {
            let violations = db.violations(ic);
            if violations.is_empty() {
                continue;
            }
            changed = true;
            match &ic.head {
                IcHead::Atom(head) => {
                    for v in violations {
                        let mut fresh = Subst::new();
                        for var in head.vars() {
                            if v.get(var).is_none() && fresh.get(var).is_none() {
                                null_counter += 1;
                                fresh.insert(
                                    var,
                                    Term::Const(Value::str(&format!("null{null_counter}"))),
                                );
                            }
                        }
                        let ground = fresh.apply_atom(&v.apply_atom(head));
                        debug_assert!(ground.is_ground());
                        db.insert_atom(&ground);
                    }
                }
                IcHead::None | IcHead::Cmp(_) => {
                    // Remove the first body atom's matched fact of each
                    // violation. Collect first: the removal API rebuilds
                    // relations.
                    let mut to_remove: Vec<(semrec_datalog::Pred, Tuple)> = Vec::new();
                    for v in &violations {
                        let a = v.apply_atom(&ic.body_atoms[0]);
                        if a.is_ground() {
                            let t: Tuple = a.args.iter().map(|x| x.as_const().unwrap()).collect();
                            to_remove.push((a.pred, t));
                        }
                    }
                    remove_facts(db, &to_remove);
                }
            }
        }
        if !changed {
            return RepairOutcome::Satisfied;
        }
    }
    if ics.iter().all(|ic| db.satisfies(ic)) {
        RepairOutcome::Satisfied
    } else {
        RepairOutcome::BudgetExhausted
    }
}

/// Rebuilds the database without the listed facts (relations are
/// append-only, so removal means reconstruction).
fn remove_facts(db: &mut Database, remove: &[(semrec_datalog::Pred, Tuple)]) {
    let mut next = Database::new();
    for (pred, rel) in db.iter() {
        for t in rel.iter() {
            let drop = remove.iter().any(|(p, r)| *p == pred && r.as_slice() == t);
            if !drop {
                next.insert(pred, t.to_vec());
            }
        }
    }
    *db = next;
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datalog::parse_constraints;
    use semrec_engine::int_tuple;

    #[test]
    fn tuple_generating_ic_adds_facts() {
        let ics = parse_constraints("ic: a(X, Y) -> b(X, Y).").unwrap();
        let mut db = Database::new();
        db.insert("a", int_tuple(&[1, 2]));
        db.insert("a", int_tuple(&[3, 4]));
        assert_eq!(repair(&mut db, &ics, 10), RepairOutcome::Satisfied);
        assert_eq!(db.count("b"), 2);
        assert!(db.satisfies(&ics[0]));
    }

    #[test]
    fn existential_head_gets_labelled_null() {
        let ics = parse_constraints("ic: person(X) -> guardian(X, G).").unwrap();
        let mut db = Database::new();
        db.insert("person", int_tuple(&[7]));
        assert_eq!(repair(&mut db, &ics, 10), RepairOutcome::Satisfied);
        assert_eq!(db.count("guardian"), 1);
    }

    #[test]
    fn denial_removes_violating_facts() {
        let ics = parse_constraints("ic: e(X, X) -> .").unwrap();
        let mut db = Database::new();
        db.insert("e", int_tuple(&[1, 1]));
        db.insert("e", int_tuple(&[1, 2]));
        assert_eq!(repair(&mut db, &ics, 10), RepairOutcome::Satisfied);
        assert_eq!(db.count("e"), 1);
        assert!(db.satisfies(&ics[0]));
    }

    #[test]
    fn transitivity_chase_converges_on_small_data() {
        let ics = parse_constraints("ic: a(X, Y), a(Y, Z) -> a(X, Z).").unwrap();
        let mut db = Database::new();
        for i in 0..5 {
            db.insert("a", int_tuple(&[i, i + 1]));
        }
        assert_eq!(repair(&mut db, &ics, 50), RepairOutcome::Satisfied);
        assert_eq!(db.count("a"), 5 * 6 / 2);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // a(X,Y) -> a(Y,X2) with a fresh X2 every round diverges.
        let ics = parse_constraints("ic: a(X, Y) -> a(Y, Z).").unwrap();
        let mut db = Database::new();
        db.insert("a", vec![Value::str("u"), Value::str("v")]);
        assert_eq!(repair(&mut db, &ics, 3), RepairOutcome::BudgetExhausted);
    }
}
