//! Example 4.1's organizational database: `boss(E, B, R)` (B is a boss of
//! E with rank R), `same_level(E1, E2, E3)` and `experienced(E)`, with the
//! IC "executive-ranked bosses are experienced".

use crate::rng::Rng;
use semrec_datalog::term::Value;
use semrec_engine::Database;

/// The scenario program and IC (Example 4.1).
pub const PROGRAM: &str = "
    triple(E1, E2, E3) :- same_level(E1, E2, E3).
    triple(E1, E2, E3) :- boss(U, E3, R), experienced(U), triple(U, E1, E2).
    ic ic1: boss(E, B, R), R = executive -> experienced(B).
";

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct OrgParams {
    /// Total number of employees.
    pub employees: usize,
    /// Children per manager in the reporting tree.
    pub branching: usize,
    /// Fraction of managers ranked `executive`.
    pub executive_frac: f64,
    /// Probability that a non-executive employee is experienced.
    pub experienced_frac: f64,
    /// Number of `same_level` seed triples.
    pub same_level_triples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OrgParams {
    fn default() -> Self {
        OrgParams {
            employees: 200,
            branching: 4,
            executive_frac: 0.3,
            experienced_frac: 0.4,
            same_level_triples: 16,
            seed: 42,
        }
    }
}

/// Generates an IC-consistent organizational database.
///
/// The reporting structure is a `branching`-ary tree over employee ids
/// `0..employees` (employee 0 is the CEO). Each manager gets a rank;
/// every `executive` is inserted into `experienced` (enforcing ic1), and
/// other employees are experienced with probability `experienced_frac`.
pub fn generate(params: &OrgParams) -> Database {
    let mut rng = Rng::seed_from_u64(params.seed);
    let mut db = Database::new();
    let n = params.employees.max(2);
    let b = params.branching.max(1);

    let rank_exec = Value::str("executive");
    let rank_mgr = Value::str("manager");

    // Manager ranks, decided once per manager.
    let mut is_exec = vec![false; n];
    let mut experienced = vec![false; n];
    for e in 0..n {
        is_exec[e] = rng.gen_bool(params.executive_frac.clamp(0.0, 1.0));
        experienced[e] = rng.gen_bool(params.experienced_frac.clamp(0.0, 1.0));
    }

    // Depth of each employee in the tree (for same_level sampling).
    let mut level = vec![0usize; n];
    for e in 1..n {
        let parent = (e - 1) / b;
        level[e] = level[parent] + 1;
        let rank = if is_exec[parent] { rank_exec } else { rank_mgr };
        db.insert(
            "boss",
            vec![Value::Int(e as i64), Value::Int(parent as i64), rank],
        );
        if is_exec[parent] {
            experienced[parent] = true; // enforce ic1
        }
    }
    for (e, &exp) in experienced.iter().enumerate() {
        if exp {
            db.insert("experienced", vec![Value::Int(e as i64)]);
        }
    }

    // same_level: sample triples of employees at equal depth.
    let max_level = level.iter().copied().max().unwrap_or(0);
    let mut by_level: Vec<Vec<usize>> = vec![Vec::new(); max_level + 1];
    for (e, &l) in level.iter().enumerate() {
        by_level[l].push(e);
    }
    let mut inserted = 0;
    let mut attempts = 0;
    while inserted < params.same_level_triples && attempts < params.same_level_triples * 20 {
        attempts += 1;
        let l = rng.gen_range(0..=max_level);
        let pool = &by_level[l];
        if pool.len() < 3 {
            continue;
        }
        let pick = |rng: &mut Rng| pool[rng.gen_range(0..pool.len())] as i64;
        let (a, b2, c) = (pick(&mut rng), pick(&mut rng), pick(&mut rng));
        if db.insert(
            "same_level",
            vec![Value::Int(a), Value::Int(b2), Value::Int(c)],
        ) {
            inserted += 1;
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_scenario;

    #[test]
    fn generated_db_satisfies_ic() {
        let s = parse_scenario(PROGRAM);
        for seed in [1, 7, 99] {
            let db = generate(&OrgParams {
                employees: 120,
                seed,
                ..OrgParams::default()
            });
            for ic in &s.constraints {
                assert!(db.satisfies(ic), "seed {seed} violates {ic}");
            }
            assert!(db.count("boss") >= 100);
            assert!(db.count("same_level") > 0);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let p = OrgParams::default();
        assert_eq!(generate(&p), generate(&p));
        let q = OrgParams {
            seed: p.seed + 1,
            ..p
        };
        assert_ne!(generate(&p), generate(&q));
    }

    #[test]
    fn executive_fraction_scales() {
        let lo = generate(&OrgParams {
            executive_frac: 0.0,
            experienced_frac: 0.0,
            ..OrgParams::default()
        });
        assert_eq!(lo.count("experienced"), 0);
        let hi = generate(&OrgParams {
            executive_frac: 1.0,
            ..OrgParams::default()
        });
        assert!(hi.count("experienced") > 0);
    }
}
