//! # semrec-gen
//!
//! Seeded, IC-consistent synthetic workload generators for the paper's
//! three motivating scenarios plus generic graph data:
//!
//! * [`org`] — Example 4.1's organizational database (atom elimination);
//! * [`university`] — Examples 3.2/4.2's university database (atom
//!   elimination + atom introduction);
//! * [`genealogy`] — Example 4.3's genealogy-with-ages database (subtree
//!   pruning);
//! * [`graphs`] — chains, trees, random digraphs for engine benchmarks.
//!
//! Every generator *enforces* its scenario's integrity constraints during
//! generation (residue-based optimization is only meaningful on databases
//! that satisfy the ICs) and is deterministic in its seed. Each scenario
//! module exposes a `PROGRAM` source (rules + ICs) plus a
//! `generate(params) -> Database` function.

#![warn(missing_docs)]

pub mod export;
pub mod fanout;
pub mod flights;
pub mod genealogy;
pub mod graphs;
pub mod org;
pub mod programs;
pub mod repair;
pub mod rng;
pub mod university;

use semrec_datalog::constraint::Constraint;
use semrec_datalog::parser::parse_unit;
use semrec_datalog::program::Program;

/// A parsed scenario: program + constraints.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The rules.
    pub program: Program,
    /// The integrity constraints.
    pub constraints: Vec<Constraint>,
}

/// Parses a scenario source (rules + ICs).
///
/// # Panics
/// Panics if the built-in source fails to parse (a bug in this crate).
pub fn parse_scenario(src: &str) -> Scenario {
    let unit = parse_unit(src).expect("built-in scenario source parses");
    Scenario {
        program: unit.program(),
        constraints: unit.constraints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_parse_and_validate() {
        for src in [
            org::PROGRAM,
            university::PROGRAM,
            genealogy::PROGRAM,
            fanout::PROGRAM,
            flights::PROGRAM,
        ] {
            let s = parse_scenario(src);
            semrec_datalog::analysis::validate(&s.program, &s.constraints).unwrap();
        }
    }
}
