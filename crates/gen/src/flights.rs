//! A flight-routing scenario exercising *conditional* rule-level atom
//! elimination: international carriers only serve hub airports, so the
//! `hub(H)` check is redundant exactly on the international branch.
//!
//! Complements [`crate::fanout`] (unconditional, k = 1) and
//! [`crate::org`] (conditional, k = 4): here the optimizer splits the
//! recursive rule on `K = intl` / `K != intl` and drops the hub probe from
//! the international branch.

use crate::rng::Rng;
use semrec_datalog::term::Value;
use semrec_engine::Database;

/// The scenario program and IC.
pub const PROGRAM: &str = "
    route(X, Y) :- flight(X, Y, A, K).
    route(X, Y) :- flight(X, H, A, K), hub(H), route(H, Y).
    ic ic1: flight(X, H, A, K), K = intl -> hub(H).
";

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct FlightsParams {
    /// Number of airports.
    pub airports: usize,
    /// Fraction of airports that are hubs.
    pub hub_frac: f64,
    /// Number of flights.
    pub flights: usize,
    /// Fraction of flights operated by international carriers.
    pub intl_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlightsParams {
    fn default() -> Self {
        FlightsParams {
            airports: 60,
            hub_frac: 0.3,
            flights: 400,
            intl_frac: 0.5,
            seed: 42,
        }
    }
}

/// Generates an IC-consistent flight network: international flights always
/// land at hubs; domestic flights land anywhere.
pub fn generate(params: &FlightsParams) -> Database {
    let mut rng = Rng::seed_from_u64(params.seed);
    let mut db = Database::new();
    let n = params.airports.max(2);
    let hubs: Vec<bool> = (0..n)
        .map(|_| rng.gen_bool(params.hub_frac.clamp(0.0, 1.0)))
        .collect();
    // Guarantee at least one hub so international flights exist.
    let mut hubs = hubs;
    hubs[0] = true;
    for (a, &h) in hubs.iter().enumerate() {
        if h {
            db.insert("hub", vec![Value::Int(a as i64)]);
        }
    }
    let hub_ids: Vec<i64> = hubs
        .iter()
        .enumerate()
        .filter(|(_, &h)| h)
        .map(|(i, _)| i as i64)
        .collect();
    let carriers = ["skyways", "aerocorp", "jetline", "windair"];
    for f in 0..params.flights {
        let from = rng.gen_range(0..n) as i64;
        let intl = rng.gen_bool(params.intl_frac.clamp(0.0, 1.0));
        let to = if intl {
            hub_ids[rng.gen_range(0..hub_ids.len())]
        } else {
            rng.gen_range(0..n) as i64
        };
        if to == from {
            continue;
        }
        let carrier = Value::str(&format!("{}{}", carriers[f % carriers.len()], f % 7));
        let kind = Value::str(if intl { "intl" } else { "dom" });
        db.insert(
            "flight",
            vec![Value::Int(from), Value::Int(to), carrier, kind],
        );
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_scenario;

    #[test]
    fn generated_db_satisfies_ic() {
        let s = parse_scenario(PROGRAM);
        for seed in [1, 9, 77] {
            let db = generate(&FlightsParams {
                seed,
                ..FlightsParams::default()
            });
            for ic in &s.constraints {
                assert!(db.satisfies(ic), "seed {seed} violates {ic}");
            }
        }
    }

    #[test]
    fn intl_fraction_controls_branch_selectivity() {
        let dom = generate(&FlightsParams {
            intl_frac: 0.0,
            ..FlightsParams::default()
        });
        let intl = generate(&FlightsParams {
            intl_frac: 1.0,
            ..FlightsParams::default()
        });
        let count_kind = |db: &Database, kind: &str| {
            db.get(semrec_datalog::Pred::new("flight"))
                .map(|r| r.iter().filter(|t| t[3] == Value::str(kind)).count())
                .unwrap_or(0)
        };
        assert_eq!(count_kind(&dom, "intl"), 0);
        assert_eq!(count_kind(&intl, "dom"), 0);
    }
}
