//! Example 4.3's genealogy database: `par(Person, PersonAge, Parent,
//! ParentAge)` with the IC "people of age ≤ 50 do not have 3 generations
//! of descendants below them" (driving conditional subtree pruning).
//!
//! Consistency is enforced *structurally*: ages are assigned bottom-up with
//! a generation gap of at least 20 years and leaf ages of at most 30, so
//! anyone with three descendant generations is at least 60 — the IC can
//! never be violated.

use crate::rng::Rng;
use semrec_datalog::term::Value;
use semrec_engine::Database;

/// The scenario program and IC (Example 4.3).
pub const PROGRAM: &str = "
    anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).
    anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za), par(Z, Za, Y, Ya).
    ic ic1: Ya <= 50, par(Z, Za, Y, Ya), par(Z1, Z1a, Z, Za), par(Z2, Z2a, Z1, Z1a) -> .
";

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct GenealogyParams {
    /// Number of family-tree roots (oldest ancestors).
    pub families: usize,
    /// Generations below each root.
    pub depth: usize,
    /// Children per person.
    pub branching: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenealogyParams {
    fn default() -> Self {
        GenealogyParams {
            families: 4,
            depth: 5,
            branching: 2,
            seed: 42,
        }
    }
}

/// Generates an IC-consistent genealogy.
///
/// Each family is a `branching`-ary tree of the given depth. A person at
/// height `h` above the leaves has age `leaf_age + Σ gaps` with gaps in
/// `20..=35`, so the 3-generations-below-50 denial holds by construction.
pub fn generate(params: &GenealogyParams) -> Database {
    let mut rng = Rng::seed_from_u64(params.seed);
    let mut db = Database::new();
    let mut next_id = 0i64;

    for _ in 0..params.families.max(1) {
        // Build top-down, assign ages top-down with decreasing gaps — the
        // root's age must cover the full depth.
        let depth = params.depth.max(1);
        let root_age = 18 + 25 * depth as i64 + rng.gen_range(0..10i64);
        let root = next_id;
        next_id += 1;
        let mut frontier: Vec<(i64, i64)> = vec![(root, root_age)];
        for _level in 1..=depth {
            let mut next_frontier = Vec::new();
            for &(parent, parent_age) in &frontier {
                for _ in 0..params.branching.max(1) {
                    let gap = rng.gen_range(20..=35i64);
                    let age = (parent_age - gap).max(0);
                    let child = next_id;
                    next_id += 1;
                    db.insert(
                        "par",
                        vec![
                            Value::Int(child),
                            Value::Int(age),
                            Value::Int(parent),
                            Value::Int(parent_age),
                        ],
                    );
                    next_frontier.push((child, age));
                }
            }
            frontier = next_frontier;
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_scenario;

    #[test]
    fn generated_db_satisfies_ic() {
        let s = parse_scenario(PROGRAM);
        for seed in [5, 17, 3000] {
            let db = generate(&GenealogyParams {
                families: 3,
                depth: 4,
                branching: 2,
                seed,
            });
            for ic in &s.constraints {
                assert!(db.satisfies(ic), "seed {seed} violates {ic}");
            }
        }
    }

    #[test]
    fn sizes_scale_with_parameters() {
        let small = generate(&GenealogyParams {
            families: 1,
            depth: 3,
            branching: 2,
            seed: 1,
        });
        let large = generate(&GenealogyParams {
            families: 2,
            depth: 5,
            branching: 2,
            seed: 1,
        });
        assert!(large.count("par") > small.count("par"));
        // 1 family, depth 3, branching 2: 2 + 4 + 8 = 14 edges.
        assert_eq!(small.count("par"), 14);
    }

    #[test]
    fn some_people_are_young() {
        // The pruning condition Ya <= 50 must be non-vacuous: young parents
        // exist (they just have short descendant chains).
        let db = generate(&GenealogyParams::default());
        let rel = db.get(semrec_datalog::Pred::new("par")).unwrap();
        let young_parents = rel
            .iter()
            .filter(|t| matches!(t[3], Value::Int(a) if a <= 50))
            .count();
        assert!(young_parents > 0);
    }
}
