//! Random linear-recursive program generation, for property-testing the
//! transformations on programs beyond the hand-written scenarios.
//!
//! Every generated program satisfies the paper's assumptions by
//! construction: rectified heads, range-restricted, connected (the body is
//! a chain of binary atoms over a shuffled variable list), safe, and
//! linearly recursive with one exit rule.

use crate::rng::Rng;
use semrec_datalog::atom::Atom;
use semrec_datalog::literal::Literal;
use semrec_datalog::program::Program;
use semrec_datalog::rule::Rule;
use semrec_datalog::term::Term;

/// Parameters for [`random_linear`].
#[derive(Clone, Copy, Debug)]
pub struct RandomLinearParams {
    /// Arity of the recursive predicate (2..=4 recommended).
    pub arity: usize,
    /// Number of recursive rules (1..=3 recommended).
    pub recursive_rules: usize,
    /// Local variables per recursive rule (0..=2 recommended).
    pub locals: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomLinearParams {
    fn default() -> Self {
        RandomLinearParams {
            arity: 2,
            recursive_rules: 1,
            locals: 1,
            seed: 42,
        }
    }
}

/// Generates a random linear program over predicate `p`, with EDB
/// predicates `e0` (the exit relation, arity = `arity`) and `b<r>x<i>`
/// (binary chain relations of rule `r`).
pub fn random_linear(params: &RandomLinearParams) -> Program {
    let mut rng = Rng::seed_from_u64(params.seed);
    let n = params.arity.clamp(1, 6);
    let head_vars: Vec<Term> = (0..n).map(|i| Term::var(&format!("X{i}"))).collect();
    let head = Atom::new("p", head_vars.clone());

    let mut rules = vec![Rule::new(
        head.clone(),
        vec![Literal::Atom(Atom::new("e0", head_vars.clone()))],
    )];

    for r in 0..params.recursive_rules.max(1) {
        let mut vars = head_vars.clone();
        for l in 0..params.locals {
            vars.push(Term::var(&format!("L{r}x{l}")));
        }
        // A chain of binary atoms over a shuffled copy covers every
        // variable and keeps the body connected.
        let mut shuffled = vars.clone();
        rng.shuffle(&mut shuffled);
        let mut body: Vec<Literal> = Vec::new();
        if shuffled.len() == 1 {
            body.push(Literal::Atom(Atom::new(
                format!("b{r}x0").as_str(),
                vec![shuffled[0], shuffled[0]],
            )));
        }
        for (i, w) in shuffled.windows(2).enumerate() {
            body.push(Literal::Atom(Atom::new(
                format!("b{r}x{i}").as_str(),
                vec![w[0], w[1]],
            )));
        }
        // Recursive call: each position picks any variable (bound by the
        // chain, so the rule stays safe).
        let call_args: Vec<Term> = (0..n).map(|_| vars[rng.gen_range(0..vars.len())]).collect();
        body.push(Literal::Atom(Atom::new("p", call_args)));
        rules.push(Rule::new(head.clone(), body));
    }
    Program::new(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datalog::analysis::{classify_linear_pred, validate};
    use semrec_datalog::Pred;

    #[test]
    fn generated_programs_satisfy_the_assumptions() {
        for seed in 0..50 {
            let p = random_linear(&RandomLinearParams {
                arity: 1 + (seed as usize % 4),
                recursive_rules: 1 + (seed as usize % 3),
                locals: seed as usize % 3,
                seed,
            });
            validate(&p, &[]).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{p}"));
            let info = classify_linear_pred(&p, Pred::new("p")).unwrap();
            assert_eq!(info.exit_rules.len(), 1);
            assert!(!info.recursive_rules.is_empty());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = random_linear(&RandomLinearParams::default());
        let b = random_linear(&RandomLinearParams::default());
        assert_eq!(a, b);
    }
}
