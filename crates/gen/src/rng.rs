//! A tiny deterministic PRNG (SplitMix64) replacing the external `rand`
//! crate, per the workspace's offline-build policy (std-only deps).
//!
//! The API mirrors the subset of `rand` the generators used —
//! `seed_from_u64`, `gen_range`, `gen_bool`, `shuffle` — so call sites
//! read the same. Streams differ from `rand::StdRng`, so any counters in
//! EXPERIMENTS.md tied to old seeds were regenerated.
//!
//! SplitMix64 (Steele, Lea & Flood 2014) passes BigCrush, has a full
//! 2^64 period for every seed, and is a handful of arithmetic ops — more
//! than enough statistical quality for workload generation, and *not* for
//! cryptography.

use std::ops::{Range, RangeInclusive};

/// A seeded SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Identical seeds yield identical
    /// streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value below `bound` (> 0), by widening multiply —
    /// Lemire's unbiased-enough-for-workloads fast range reduction.
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform value from a range. Supports `Range` and
    /// `RangeInclusive` over `usize` and `i64`, like `rand::Rng`.
    ///
    /// # Panics
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 random bits → uniform f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform value.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for Range<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut Rng) -> usize {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut Rng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        let span = (hi - lo) as u64;
        if span == u64::MAX {
            return rng.next_u64() as usize;
        }
        lo + rng.below(span + 1) as usize
    }
}

impl SampleRange for Range<i64> {
    type Output = i64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> i64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl SampleRange for RangeInclusive<i64> {
    type Output = i64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> i64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            return rng.next_u64() as i64;
        }
        lo.wrapping_add(rng.below(span + 1) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(0..17usize);
            assert!(x < 17);
            let y = rng.gen_range(20..=35i64);
            assert!((20..=35).contains(&y));
            let z = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn range_hits_all_values() {
        let mut rng = Rng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Inclusive endpoint is reachable.
        let mut top = false;
        for _ in 0..1000 {
            top |= rng.gen_range(0..=3usize) == 3;
        }
        assert!(top);
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50! odds say shuffled");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(3..3usize);
    }
}
