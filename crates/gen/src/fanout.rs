//! A guarded-reachability scenario where atom elimination wins outright:
//! the redundant `witness` subgoal sits in the *same rule* as the IC's
//! premise (a length-1 expansion sequence), so no isolation machinery is
//! needed and the saved join work scales with the witness fan-out.
//!
//! This complements the paper's Examples 4.1/3.2, whose residues span 4 and
//! 2 levels respectively and therefore pay the sequence-commitment cost —
//! experiment E1 sweeps all three.

use crate::rng::Rng;
use semrec_datalog::term::Value;
use semrec_engine::Database;

/// The scenario program and IC.
pub const PROGRAM: &str = "
    reach(X, Y) :- edge(X, Y).
    reach(X, Y) :- edge(X, Z), witness(Z, W), reach(Z, Y).
    ic ic1: edge(X, Z) -> witness(Z, W).
";

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct FanoutParams {
    /// Number of graph nodes (edges form a chain plus random extras).
    pub nodes: usize,
    /// Extra random edges beyond the chain.
    pub extra_edges: usize,
    /// Witnesses per node (the join fan-out the elimination saves).
    pub fanout: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FanoutParams {
    fn default() -> Self {
        FanoutParams {
            nodes: 200,
            extra_edges: 100,
            fanout: 8,
            seed: 42,
        }
    }
}

/// Generates an IC-consistent database: every node carries `fanout`
/// witnesses, so every edge target trivially has one.
pub fn generate(params: &FanoutParams) -> Database {
    let mut rng = Rng::seed_from_u64(params.seed);
    let mut db = Database::new();
    let n = params.nodes.max(2);
    for i in 0..n - 1 {
        db.insert("edge", vec![Value::Int(i as i64), Value::Int(i as i64 + 1)]);
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < params.extra_edges && attempts < params.extra_edges * 20 {
        attempts += 1;
        let a = rng.gen_range(0..n) as i64;
        let b = rng.gen_range(0..n) as i64;
        if a != b && db.insert("edge", vec![Value::Int(a), Value::Int(b)]) {
            added += 1;
        }
    }
    for v in 0..n {
        for w in 0..params.fanout.max(1) {
            db.insert(
                "witness",
                vec![Value::Int(v as i64), Value::Int((v * 1000 + w) as i64)],
            );
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_scenario;

    #[test]
    fn generated_db_satisfies_ic() {
        let s = parse_scenario(PROGRAM);
        let db = generate(&FanoutParams::default());
        for ic in &s.constraints {
            assert!(db.satisfies(ic));
        }
    }

    #[test]
    fn fanout_scales_witnesses() {
        let a = generate(&FanoutParams {
            fanout: 2,
            ..FanoutParams::default()
        });
        let b = generate(&FanoutParams {
            fanout: 16,
            ..FanoutParams::default()
        });
        assert_eq!(b.count("witness"), 8 * a.count("witness"));
    }
}
