//! Exporting generated scenarios as artifacts the CLI consumes: a `.dl`
//! source (rules + ICs + optionally inline facts) and/or a CSV data
//! directory.

use crate::Scenario;
use semrec_engine::{io, Database, EngineError};
use std::fmt::Write as _;
use std::path::Path;

/// Renders a scenario (and optionally its facts) as a `.dl` source string
/// that [`semrec_datalog::parse_unit`] accepts.
pub fn to_dl(scenario: &Scenario, db: Option<&Database>) -> String {
    let mut out = String::new();
    for r in &scenario.program.rules {
        let _ = writeln!(out, "{r}");
    }
    if !scenario.constraints.is_empty() {
        let _ = writeln!(out);
        for ic in &scenario.constraints {
            let _ = writeln!(out, "{ic}");
        }
    }
    if let Some(db) = db {
        let _ = writeln!(out);
        for (pred, rel) in db.iter() {
            for t in rel.sorted_tuples() {
                let cells: Vec<String> = t.iter().map(ToString::to_string).collect();
                let _ = writeln!(out, "{pred}({}).", cells.join(", "));
            }
        }
    }
    out
}

/// Writes the scenario as `<dir>/<name>.dl` (rules + ICs only) plus a
/// `<dir>/<name>-data/` CSV directory, suitable for
/// `semrec run <name>.dl --data <name>-data`.
pub fn write_bundle(
    scenario: &Scenario,
    db: &Database,
    dir: &Path,
    name: &str,
) -> Result<(), EngineError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| EngineError::Io(format!("creating {}: {e}", dir.display())))?;
    let program_path = dir.join(format!("{name}.dl"));
    std::fs::write(&program_path, to_dl(scenario, None))
        .map_err(|e| EngineError::Io(format!("writing {}: {e}", program_path.display())))?;
    io::save_dir(db, &dir.join(format!("{name}-data")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{genealogy, parse_scenario};
    use semrec_datalog::parser::parse_unit;
    use semrec_engine::{evaluate, Strategy};

    #[test]
    fn dl_roundtrip_with_inline_facts() {
        let s = parse_scenario(genealogy::PROGRAM);
        let db = genealogy::generate(&genealogy::GenealogyParams {
            families: 1,
            depth: 3,
            branching: 2,
            seed: 3,
        });
        let text = to_dl(&s, Some(&db));
        let unit = parse_unit(&text).expect("exported source parses");
        assert_eq!(unit.rules.len(), s.program.rules.len());
        assert_eq!(unit.constraints.len(), s.constraints.len());
        assert_eq!(unit.facts.len(), db.total_tuples());

        // Evaluating the re-parsed bundle gives the same IDB.
        let db2 = Database::from_facts(&unit.facts);
        let a = evaluate(&db, &s.program, Strategy::SemiNaive).unwrap();
        let b = evaluate(&db2, &unit.program(), Strategy::SemiNaive).unwrap();
        assert_eq!(
            a.relation("anc").unwrap().sorted_tuples(),
            b.relation("anc").unwrap().sorted_tuples()
        );
    }

    #[test]
    fn bundle_written_and_loadable() {
        let dir = std::env::temp_dir().join(format!("semrec-export-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = parse_scenario(crate::fanout::PROGRAM);
        let db = crate::fanout::generate(&crate::fanout::FanoutParams {
            nodes: 10,
            extra_edges: 5,
            fanout: 2,
            seed: 1,
        });
        write_bundle(&s, &db, &dir, "fanout").unwrap();
        assert!(dir.join("fanout.dl").exists());
        let mut back = Database::new();
        let n = io::load_dir(&mut back, &dir.join("fanout-data")).unwrap();
        assert_eq!(n, db.total_tuples());
        assert_eq!(back, db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
