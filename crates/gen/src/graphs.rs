//! Generic graph data for engine and detection benchmarks.

use crate::rng::Rng;
use semrec_datalog::term::Value;
use semrec_engine::Database;

/// A chain `0 → 1 → … → n` under predicate `pred`.
pub fn chain(pred: &str, n: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        db.insert(pred, vec![Value::Int(i as i64), Value::Int(i as i64 + 1)]);
    }
    db
}

/// A single cycle of length `n`.
pub fn cycle(pred: &str, n: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        db.insert(
            pred,
            vec![Value::Int(i as i64), Value::Int(((i + 1) % n) as i64)],
        );
    }
    db
}

/// A complete `b`-ary tree with `n` nodes, edges parent → child.
pub fn tree(pred: &str, n: usize, b: usize) -> Database {
    let mut db = Database::new();
    let b = b.max(1);
    for child in 1..n {
        let parent = (child - 1) / b;
        db.insert(
            pred,
            vec![Value::Int(parent as i64), Value::Int(child as i64)],
        );
    }
    db
}

/// A random digraph with `n` nodes and `m` distinct edges (no self loops).
pub fn random_digraph(pred: &str, n: usize, m: usize, seed: u64) -> Database {
    let mut rng = Rng::seed_from_u64(seed);
    let mut db = Database::new();
    let n = n.max(2);
    let mut inserted = 0;
    let mut attempts = 0;
    while inserted < m && attempts < m * 20 {
        attempts += 1;
        let a = rng.gen_range(0..n) as i64;
        let b = rng.gen_range(0..n) as i64;
        if a != b && db.insert(pred, vec![Value::Int(a), Value::Int(b)]) {
            inserted += 1;
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_counts() {
        assert_eq!(chain("e", 10).count("e"), 10);
    }

    #[test]
    fn cycle_counts() {
        assert_eq!(cycle("e", 5).count("e"), 5);
    }

    #[test]
    fn tree_counts() {
        assert_eq!(tree("e", 15, 2).count("e"), 14);
    }

    #[test]
    fn random_digraph_deterministic() {
        let a = random_digraph("e", 30, 60, 7);
        let b = random_digraph("e", 30, 60, 7);
        assert_eq!(a, b);
        assert_eq!(a.count("e"), 60);
    }
}
