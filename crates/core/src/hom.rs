//! Homomorphism search over conjunctions of atoms, shared by the residue
//! usefulness check ([`crate::residue`]) and conjunctive-query
//! minimization ([`crate::minimize`]).
//!
//! A *folding homomorphism* here is an idempotent variable mapping `h`
//! that fixes a set of protected variables and sends every source atom
//! onto some target atom under a single application. Idempotency (every
//! variable in `h`'s range is frozen to itself) makes single application
//! well-defined during the backtracking search: once a variable is bound —
//! possibly to itself — later atoms can never silently invalidate earlier
//! matches.

use semrec_datalog::atom::Atom;
use semrec_datalog::subst::Subst;
use semrec_datalog::symbol::Symbol;
use semrec_datalog::term::Term;
use std::collections::BTreeSet;

/// Extends `h` with `v ↦ t`, keeping the mapping idempotent. Returns
/// `false` on conflict.
pub fn bind(h: &mut Subst, v: Symbol, t: Term) -> bool {
    match h.get(v) {
        Some(prev) => prev == t,
        None => {
            if let Term::Var(w) = t {
                if w != v {
                    match h.get(w) {
                        Some(p) if p != Term::Var(w) => return false,
                        Some(_) => {}
                        None => {
                            h.insert(w, Term::Var(w));
                        }
                    }
                }
            }
            h.insert(v, t);
            true
        }
    }
}

/// Matches `h(source)` onto `target`, binding remaining unprotected
/// variables (identity bindings included), returning the extended mapping.
pub fn match_into(
    source: &Atom,
    target: &Atom,
    h: &Subst,
    protected: &BTreeSet<Symbol>,
) -> Option<Subst> {
    if source.pred != target.pred || source.arity() != target.arity() {
        return None;
    }
    let mut h2 = h.clone();
    for (&st, &tt) in source.args.iter().zip(&target.args) {
        match st {
            Term::Const(_) => {
                if st != tt {
                    return None;
                }
            }
            Term::Var(v) if protected.contains(&v) => {
                if Term::Var(v) != tt {
                    return None;
                }
            }
            Term::Var(v) => {
                if !bind(&mut h2, v, tt) {
                    return None;
                }
            }
        }
    }
    Some(h2)
}

/// Backtracking search: can `h` (fixing `protected`) be extended so every
/// atom of `sources` maps into `targets`?
pub fn extend_hom(
    sources: &[&Atom],
    i: usize,
    h: &Subst,
    protected: &BTreeSet<Symbol>,
    targets: &[&Atom],
) -> bool {
    let Some(atom) = sources.get(i) else {
        return true;
    };
    for target in targets {
        if let Some(h2) = match_into(atom, target, h, protected) {
            if extend_hom(sources, i + 1, &h2, protected, targets) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datalog::parser::parse_atom;

    fn a(s: &str) -> Atom {
        parse_atom(s).unwrap()
    }

    fn protected(names: &[&str]) -> BTreeSet<Symbol> {
        names.iter().map(|n| Symbol::intern(n)).collect()
    }

    #[test]
    fn bind_is_idempotent() {
        let mut h = Subst::new();
        assert!(bind(&mut h, Symbol::intern("A"), Term::var("B")));
        // B is frozen to itself; remapping it fails.
        assert!(!bind(&mut h, Symbol::intern("B"), Term::int(3)));
        // Rebinding A consistently succeeds, inconsistently fails.
        assert!(bind(&mut h, Symbol::intern("A"), Term::var("B")));
        assert!(!bind(&mut h, Symbol::intern("A"), Term::var("C")));
    }

    #[test]
    fn extend_hom_folds_chain() {
        // e(X, Y), e(Y, Z) with protected {X} folds into e(X, Y) by
        // Y ↦ … no: e(Y,Z) must land on e(X,Y), needing Y ↦ X — but X is
        // only protected as a *domain* restriction; Y ↦ X is allowed.
        let s1 = a("e(X, Y)");
        let s2 = a("e(Y, Z)");
        let t = a("e(X, Y)");
        let sources = vec![&s1, &s2];
        let targets = vec![&t];
        // h must send e(Y,Z) onto e(X,Y): Y↦X conflicts with s1's Y↦Y
        // binding (s1 maps onto t binding X↦X, Y↦Y). So this fails …
        assert!(!extend_hom(
            &sources,
            0,
            &Subst::new(),
            &protected(&["X"]),
            &targets
        ));
        // … but a triangle folds: e(X, Y), e(Y, Y) into targets {e(X,Y), e(Y,Y)}.
        let s3 = a("e(Y, Y)");
        let sources = vec![&s1, &s3];
        let t2 = a("e(Y, Y)");
        let targets = vec![&t, &t2];
        assert!(extend_hom(
            &sources,
            0,
            &Subst::new(),
            &protected(&["X"]),
            &targets
        ));
    }

    #[test]
    fn protected_vars_must_map_identically() {
        let s = a("p(X)");
        let t = a("p(Y)");
        let sources = vec![&s];
        let targets = vec![&t];
        assert!(!extend_hom(
            &sources,
            0,
            &Subst::new(),
            &protected(&["X"]),
            &targets
        ));
        assert!(extend_hom(
            &sources,
            0,
            &Subst::new(),
            &protected(&[]),
            &targets
        ));
    }
}
