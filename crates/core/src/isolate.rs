//! Algorithm 4.1: transforming a program into an equivalent one that
//! *isolates* an expansion sequence.
//!
//! For a sequence `s = ⟨r_{j1}, …, r_{jk}⟩` over a linear predicate `p`,
//! auxiliary predicates `p^1 … p^{k-1}` and `q^1 … q^{k-1}` are introduced
//! (with `p^0 = p^k = q^0 = q^k = p`) and three rule groups are emitted:
//!
//! * **α-rules** `p^{i-1} :- body(r_{ji})[p ↦ p^i]` — advance the match of
//!   `s`; a complete α-chain is exactly one occurrence of `s`.
//! * **β-rules** `p^{i-1} :- body(r_{ji})[p ↦ q^i]` — apply `r_{ji}` but
//!   commit to deviating from `s` at the next step.
//! * **γ-rules** `q^{i-1} :- body(r_l)` for every `l ≠ j_i` — the deviating
//!   step; its recursive subgoal returns to `p`, where a fresh match of `s`
//!   may begin.
//!
//! Step 5's head/body unifications are realized by constructing the
//! α-rules with the *same* per-step renaming as the sequence's
//! [`crate::sequence::Unfolding`]: the `i`-th α-rule's variables
//! are exactly the step-`i` variables of the unfolding, so residues
//! computed against the unfolding can be attached syntactically
//! ([`crate::push`]).
//!
//! The transformation preserves the set of proof trees (Theorem 4.1):
//! property tests in `tests/` check IDB equality against the original
//! program on random databases.

use crate::sequence::Unfolding;
use semrec_datalog::analysis::RecursionInfo;
use semrec_datalog::atom::{Atom, Pred};
use semrec_datalog::literal::Literal;
use semrec_datalog::program::Program;
use semrec_datalog::rule::Rule;
use semrec_datalog::subst::Subst;
use semrec_datalog::symbol::Symbol;
use semrec_datalog::term::Term;

/// The result of isolating a sequence.
#[derive(Clone, Debug)]
pub struct Isolated {
    /// The transformed program (all rules: non-`p` rules first, then α, β,
    /// γ groups).
    pub program: Program,
    /// The isolated predicate.
    pub pred: Pred,
    /// The isolated sequence.
    pub seq: Vec<usize>,
    /// Indices (into `program`) of the α-rules, one per step.
    pub alpha: Vec<usize>,
    /// The auxiliary predicates `p^1 … p^{k-1}`.
    pub aux_p: Vec<Pred>,
    /// The auxiliary predicates `q^1 … q^{k-1}`.
    pub aux_q: Vec<Pred>,
}

/// Isolates `unfolding.seq` in `program` (rectified). The unfolding must
/// have been produced by [`crate::sequence::unfold`] on the same program.
///
/// For `k = 1` the transformation is the identity up to the step-1
/// renaming of the single rule (no auxiliary predicates).
pub fn isolate(program: &Program, info: &RecursionInfo, unfolding: &Unfolding) -> Isolated {
    let p = info.pred;
    let seq = &unfolding.seq;
    let k = seq.len();

    let aux_p: Vec<Pred> = (1..k)
        .map(|i| Pred::new(&format!("{}@p{i}", p.name())))
        .collect();
    let aux_q: Vec<Pred> = (1..k)
        .map(|i| Pred::new(&format!("{}@q{i}", p.name())))
        .collect();
    // p^i / q^i with the boundary convention p^0 = p^k = q^0 = q^k = p.
    let p_i = |i: usize| -> Pred {
        if i == 0 || i == k {
            p
        } else {
            aux_p[i - 1]
        }
    };
    let q_i = |i: usize| -> Pred {
        if i == 0 || i == k {
            p
        } else {
            aux_q[i - 1]
        }
    };

    let mut rules: Vec<Rule> = Vec::new();
    // Rules of other predicates pass through unchanged.
    for r in &program.rules {
        if r.head.pred != p {
            rules.push(r.clone());
        }
    }

    // α- and β-rules for each step i (1-based). The head of step i's rules
    // is p^{i-1}(call_args[i-1]); the body is the rule renamed by the
    // unfolding's σ_i; the recursive subgoal becomes p^i (α) / q^i (β).
    let mut alpha: Vec<usize> = Vec::new();
    for i in 1..=k {
        let rule = &program.rules[seq[i - 1]];
        let sigma = &unfolding.step_substs[i - 1];
        let head = Atom::new(p_i(i - 1), unfolding.call_args[i - 1].clone());
        let alpha_body = rename_body(rule, sigma, p, p_i(i));
        alpha.push(rules.len());
        rules.push(Rule::new(head.clone(), alpha_body));
        // β-rule: identical except the recursive subgoal goes to q^i. For
        // i = k (q^k = p) or an exit step it would duplicate the α-rule.
        if i < k && q_i(i) != p_i(i) {
            let beta_body = rename_body(rule, sigma, p, q_i(i));
            rules.push(Rule::new(head, beta_body));
        }
    }

    // γ-rules: for each step i, every rule l ≠ j_i, with head q^{i-1}.
    // For i = 1 (q^0 = p) these are verbatim copies of the other rules.
    for i in 1..=k {
        for &l in &info.all_rules() {
            if l == seq[i - 1] {
                continue;
            }
            let rule = &program.rules[l];
            if i == 1 {
                rules.push(rule.clone());
                continue;
            }
            // Head q^{i-1}(call_args[i-1]); rename the rule's head
            // variables to the incoming call args and freshen locals
            // uniquely per (i, l).
            let mut sigma = Subst::new();
            for (t, arg) in rule.head.args.iter().zip(&unfolding.call_args[i - 1]) {
                let v = t.as_var().expect("rectified head");
                sigma.insert(v, *arg);
            }
            for v in rule.local_vars() {
                sigma.insert(v, Term::Var(Symbol::intern(&format!("{v}~g{i}r{l}"))));
            }
            let head = Atom::new(q_i(i - 1), unfolding.call_args[i - 1].clone());
            let body = rename_body_with(rule, &sigma, p, p);
            rules.push(Rule::new(head, body));
        }
    }

    Isolated {
        program: Program::new(rules),
        pred: p,
        seq: seq.clone(),
        alpha,
        aux_p,
        aux_q,
    }
}

fn rename_body(rule: &Rule, sigma: &Subst, p: Pred, rec_target: Pred) -> Vec<Literal> {
    rename_body_with(rule, sigma, p, rec_target)
}

fn rename_body_with(rule: &Rule, sigma: &Subst, p: Pred, rec_target: Pred) -> Vec<Literal> {
    rule.body
        .iter()
        .map(|lit| match lit {
            Literal::Atom(a) if a.pred == p => {
                let mut renamed = sigma.apply_atom(a);
                renamed.pred = rec_target;
                Literal::Atom(renamed)
            }
            other => sigma.apply_literal(other),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::unfold;
    use semrec_datalog::analysis::{classify_linear_pred, rectify};
    use semrec_datalog::parser::parse_unit;

    fn setup(src: &str, pred: &str) -> (Program, RecursionInfo) {
        let p = parse_unit(src).unwrap().program();
        let (p, _) = rectify(&p);
        let info = classify_linear_pred(&p, Pred::new(pred)).unwrap();
        (p, info)
    }

    const ANC: &str = "anc(X,Y) :- par(X,Y). anc(X,Y) :- anc(X,Z), par(Z,Y).";

    #[test]
    fn k1_isolation_is_trivial() {
        let (p, info) = setup(ANC, "anc");
        let u = unfold(&p, &info, &[1]).unwrap();
        let iso = isolate(&p, &info, &u);
        assert!(iso.aux_p.is_empty());
        assert!(iso.aux_q.is_empty());
        assert_eq!(iso.program.len(), 2);
        assert_eq!(iso.alpha, vec![0]);
        // The α-rule is the recursive rule under the step-1 renaming.
        assert_eq!(
            iso.program.rules[iso.alpha[0]].to_string(),
            "anc(X, Y) :- anc(X, Z~1), par(Z~1, Y)."
        );
    }

    #[test]
    fn k2_isolation_structure() {
        let (p, info) = setup(ANC, "anc");
        let u = unfold(&p, &info, &[1, 1]).unwrap();
        let iso = isolate(&p, &info, &u);
        // α1, β1, α2, γ-group1 (rule 0), γ-group2 (rule 0): 5 rules.
        assert_eq!(iso.program.len(), 5);
        assert_eq!(iso.aux_p.len(), 1);
        assert_eq!(iso.aux_q.len(), 1);
        let texts: Vec<String> = iso.program.rules.iter().map(|r| r.to_string()).collect();
        // α1 routes to anc@p1; β1 to anc@q1.
        assert_eq!(texts[0], "anc(X, Y) :- anc@p1(X, Z~1), par(Z~1, Y).");
        assert_eq!(texts[1], "anc(X, Y) :- anc@q1(X, Z~1), par(Z~1, Y).");
        // α2's head carries the step-1 call args (X, Z~1) and its body is
        // the step-2 renamed rule, recursing to p (= anc).
        assert_eq!(texts[2], "anc@p1(X, Z~1) :- anc(X, Z~2), par(Z~2, Z~1).");
        // γ1: the exit rule verbatim; γ2: exit rule with head anc@q1.
        assert_eq!(texts[3], "anc(X, Y) :- par(X, Y).");
        assert_eq!(texts[4], "anc@q1(X, Z~1) :- par(X, Z~1).");
    }

    #[test]
    fn alpha_rules_share_unfolding_variables() {
        let (p, info) = setup(ANC, "anc");
        let u = unfold(&p, &info, &[1, 1, 1]).unwrap();
        let iso = isolate(&p, &info, &u);
        // The variables of α-rule i are exactly the step-i literals' vars
        // plus the chaining vars: each unfolding body literal must appear
        // verbatim in its α-rule.
        for sl in &u.body {
            let ar = &iso.program.rules[iso.alpha[sl.step - 1]];
            assert!(
                ar.body.contains(&sl.lit),
                "literal {} not found in α-rule {}",
                sl.lit,
                ar
            );
        }
    }

    #[test]
    fn exit_rule_may_close_sequence() {
        let (p, info) = setup(ANC, "anc");
        let u = unfold(&p, &info, &[1, 0]).unwrap();
        let iso = isolate(&p, &info, &u);
        // α2 is the exit rule at step 2: head anc@p1, no recursive subgoal.
        let a2 = &iso.program.rules[iso.alpha[1]];
        assert_eq!(a2.head.pred.name(), "anc@p1");
        assert!(a2.body_atoms().all(|a| a.pred != Pred::new("anc")));
        // γ-group 2 contains the recursive rule (l=1 ≠ j2=0) with head
        // anc@q1 — wait, q^1 is only reachable via β1, and its rules come
        // from group 2. Check it recurses back to anc.
        let q1 = Pred::new("anc@q1");
        let q1_rules: Vec<&Rule> = iso
            .program
            .rules
            .iter()
            .filter(|r| r.head.pred == q1)
            .collect();
        assert_eq!(q1_rules.len(), 1);
        assert!(q1_rules[0].body_atoms().any(|a| a.pred == Pred::new("anc")));
    }

    #[test]
    fn other_predicates_pass_through() {
        let (p, info) = setup(
            "anc(X,Y) :- par(X,Y). anc(X,Y) :- anc(X,Z), par(Z,Y).
             sib(X,Y) :- par(Z,X), par(Z,Y).",
            "anc",
        );
        let u = unfold(&p, &info, &[1, 1]).unwrap();
        let iso = isolate(&p, &info, &u);
        assert!(iso
            .program
            .rules
            .iter()
            .any(|r| r.head.pred == Pred::new("sib")));
    }

    #[test]
    fn all_rules_range_restricted_and_connected() {
        let (p, info) = setup(ANC, "anc");
        for seq in [
            vec![1],
            vec![1, 1],
            vec![1, 1, 1],
            vec![1, 0],
            vec![1, 1, 0],
        ] {
            let u = unfold(&p, &info, &seq).unwrap();
            let iso = isolate(&p, &info, &u);
            for r in &iso.program.rules {
                assert!(r.is_range_restricted(), "not range restricted: {r}");
            }
            semrec_datalog::analysis::check_program_safety(&iso.program).unwrap();
        }
    }
}
