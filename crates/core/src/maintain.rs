//! Residue-guarded maintenance of an optimized query across EDB updates.
//!
//! The optimizer's output is only equivalent to the rectified program on
//! databases that satisfy the integrity constraints whose residues it
//! pushed. A [`MaintainedQuery`] therefore pairs the incremental engine
//! ([`Materialized`]) with an **IC monitor** scoped to exactly those
//! constraints:
//!
//! - While every monitored IC holds, each transaction is absorbed by
//!   delta propagation / DRed on the *optimized* program's
//!   materialization ([`Route::IncrementalOptimized`]).
//! - The moment a transaction breaks a monitored IC, the optimized
//!   materialization is invalidated — its cached relations may now be
//!   unsound — and the query is re-answered from the *rectified*
//!   program ([`Route::IncrementalInvalidated`]). Subsequent
//!   transactions maintain the rectified materialization incrementally,
//!   re-checking the broken constraints in full until they hold again.
//! - When the violations clear, the optimized materialization is
//!   rebuilt and incremental maintenance of the fast route resumes.
//!
//! The monitor is delta-driven: a constraint that held before the
//! transaction is re-checked only against bindings the transaction's
//! effective delta can have created (see `semrec_engine::incr`), not by
//! re-enumerating the database.
//!
//! Transactions are atomic. Every mutation happens on working copies;
//! the query's database, materialization, and monitor state advance
//! together on success and are untouched on any error (budget
//! exhaustion, cancellation, injected fault).

use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

use semrec_datalog::atom::{Atom, Pred};
use semrec_datalog::constraint::Constraint;
use semrec_datalog::error::Error;
use semrec_datalog::program::Program;
use semrec_engine::eval::answer_goal;
use semrec_engine::incr::{ic_still_satisfied, rollback_inserts};
use semrec_engine::{
    AlternativeKind, Budget, CancelToken, CostMemo, Database, EdbStats, EngineError, Materialized,
    Relation, Route, RouteChoice, Tuning, Tuple, Tx, UpdateStats,
};

use crate::optimizer::{Optimizer, OptimizerConfig, Plan};

/// Setup errors: the optimizer can reject the program/ICs, and the
/// initial materialization can fail in the engine.
#[derive(Debug)]
pub enum MaintainError {
    /// The optimizer rejected the program or constraints.
    Optimizer(Error),
    /// The initial evaluation failed.
    Engine(EngineError),
}

impl fmt::Display for MaintainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaintainError::Optimizer(e) => write!(f, "optimizer: {e}"),
            MaintainError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for MaintainError {}

impl From<Error> for MaintainError {
    fn from(e: Error) -> Self {
        MaintainError::Optimizer(e)
    }
}

impl From<EngineError> for MaintainError {
    fn from(e: EngineError) -> Self {
        MaintainError::Engine(e)
    }
}

/// What one applied transaction did.
#[derive(Clone, Debug)]
pub struct UpdateOutcome {
    /// Which route answers queries after this transaction.
    pub route: Route,
    /// Engine counters for the maintenance work.
    pub stats: UpdateStats,
    /// True when the transaction switched routes and the new route's
    /// materialization was rebuilt from scratch (invalidation or
    /// recovery), rather than maintained by delta propagation.
    pub rebuilt: bool,
    /// Indices (into [`MaintainedQuery::monitored`]) of the constraints
    /// violated after this transaction.
    pub violated: Vec<usize>,
    /// True when this transaction re-consulted the cost planner (route
    /// transition, or EDB drift past the replan threshold) and refreshed
    /// the recorded [`RouteChoice`].
    pub replanned: bool,
}

/// An optimized query kept answerable across EDB transactions, with the
/// optimizer's constraint assumptions monitored per update.
pub struct MaintainedQuery {
    db: Database,
    plan: Plan,
    /// The constraints the optimized route's soundness depends on.
    monitored: Vec<Constraint>,
    /// Per monitored constraint: does it hold on the current database?
    ic_ok: Vec<bool>,
    /// The live materialization — the cost planner's pick among the
    /// *sound* programs: while every monitored IC holds that is the
    /// cheaper of `plan.program` and `plan.rectified`; under a violation
    /// only `plan.rectified` is sound.
    active: Materialized,
    /// Monitor state: every monitored IC holds.
    on_optimized: bool,
    /// Which sound program `active` materializes: true = `plan.program`
    /// (residue-pushed), false = `plan.rectified`.
    active_opt: bool,
    route: Route,
    tuning: Tuning,
    /// Generation-keyed EDB statistics shared across replanning passes.
    edb_stats: EdbStats,
    /// The planner's latest verdict (None when pricing failed).
    choice: Option<RouteChoice>,
    /// Total EDB rows when the planner last ran; drifting past 2× in
    /// either direction triggers a replan on the next transaction.
    planned_rows: u64,
    /// Planner consultations over this query's lifetime.
    replans: u64,
}

/// Total physical EDB rows (the planner's drift metric).
fn edb_rows(db: &Database) -> u64 {
    db.iter().map(|(_, r)| r.len() as u64).sum()
}

/// Prices the sound alternatives of `plan` on `db`. Under a violation
/// (`ics_hold` false) only the rectified program is sound; otherwise
/// the residue-pushed program (when the optimizer applied anything)
/// competes with it. When pricing fails the fixed IC-driven choice is
/// returned with no recorded verdict.
fn plan_route(
    db: &Database,
    plan: &Plan,
    stats: &mut EdbStats,
    ics_hold: bool,
) -> (AlternativeKind, Option<RouteChoice>) {
    let mut alts: Vec<(AlternativeKind, Program)> = Vec::new();
    if ics_hold && plan.any_applied() {
        alts.push((AlternativeKind::ResiduePushed, plan.program.clone()));
    }
    alts.push((AlternativeKind::Rectified, plan.rectified.clone()));
    match CostMemo::build(db, stats, alts) {
        Ok(memo) => (memo.best().kind, Some(memo.choice())),
        Err(_) => (
            if ics_hold && plan.any_applied() {
                AlternativeKind::ResiduePushed
            } else {
                AlternativeKind::Rectified
            },
            None,
        ),
    }
}

/// The constraints whose residues the plan actually pushed, deduplicated.
/// Rule-level rewrites are not attributed to individual constraints, so
/// a plan that applied any monitors the full constraint set.
fn monitored_ics(plan: &Plan, ics: &[Constraint]) -> Vec<Constraint> {
    if plan.rule_level > 0 {
        return ics.to_vec();
    }
    let mut out: Vec<Constraint> = Vec::new();
    for a in &plan.applied {
        if !out.contains(&a.residue.ic) {
            out.push(a.residue.ic.clone());
        }
    }
    out
}

impl MaintainedQuery {
    /// Optimizes `program` under `ics` and materializes the appropriate
    /// route over `db` (the optimized program if every monitored IC
    /// holds, the rectified program otherwise).
    pub fn new(
        db: Database,
        program: &Program,
        ics: &[Constraint],
        config: OptimizerConfig,
        threads: usize,
    ) -> Result<MaintainedQuery, MaintainError> {
        MaintainedQuery::new_tuned(db, program, ics, config, Tuning::with_threads(threads))
    }

    /// [`MaintainedQuery::new`] with the full evaluator [`Tuning`]
    /// bundle: the initial materialization and every later update or
    /// route-transition rebuild run under it, so a serving daemon's
    /// configuration (threads × cutover × kernels) governs the whole
    /// maintained lifetime.
    pub fn new_tuned(
        db: Database,
        program: &Program,
        ics: &[Constraint],
        config: OptimizerConfig,
        tuning: Tuning,
    ) -> Result<MaintainedQuery, MaintainError> {
        let plan = Optimizer::new(program)
            .with_constraints(ics)
            .with_config(config)
            .run()?;
        let monitored = monitored_ics(&plan, ics);
        let ic_ok: Vec<bool> = monitored.iter().map(|ic| db.satisfies(ic)).collect();
        let on_optimized = ic_ok.iter().all(|&b| b);
        // Initial consultation: among the sound programs, materialize
        // the planner's pick.
        let mut edb_stats = EdbStats::new();
        let (kind, choice) = plan_route(&db, &plan, &mut edb_stats, on_optimized);
        let active_opt = kind == AlternativeKind::ResiduePushed;
        let active_program = if active_opt {
            &plan.program
        } else {
            &plan.rectified
        };
        let active = Materialized::new_tuned(&db, active_program, tuning)?;
        let route = if !on_optimized {
            Route::RectifiedFallback
        } else if active_opt {
            Route::Optimized
        } else if plan.any_applied() {
            // ICs hold but the planner priced rectified cheaper: the
            // rectified program answers by choice, not degradation.
            Route::RectifiedFallback
        } else {
            Route::Direct
        };
        let planned_rows = edb_rows(&db);
        Ok(MaintainedQuery {
            db,
            plan,
            monitored,
            ic_ok,
            active,
            on_optimized,
            active_opt,
            route,
            tuning,
            edb_stats,
            choice,
            planned_rows,
            replans: 1,
        })
    }

    /// True when total EDB rows have drifted past 2× (either direction)
    /// since the planner last ran — large transactions can invert the
    /// cost ranking, so the next update re-consults.
    fn stats_drifted(&self) -> bool {
        let rows = edb_rows(&self.db);
        self.planned_rows > 0
            && (rows > self.planned_rows.saturating_mul(2) || rows < self.planned_rows / 2)
    }

    /// Applies `tx` atomically: EDB update, delta IC re-check, route
    /// transition if the monitored constraints changed truth value, and
    /// incremental (or rebuild) maintenance of the active
    /// materialization. On error nothing — database, materialization,
    /// monitor state — has changed.
    pub fn apply(
        &mut self,
        tx: &Tx,
        budget: Budget,
        cancel: Option<CancelToken>,
    ) -> Result<UpdateOutcome, EngineError> {
        let start = Instant::now();
        if tx.deletes().values().all(Vec::is_empty) && self.active.is_incremental() {
            return self.apply_insert_only(tx, budget, cancel, start);
        }
        let mut work = self.db.clone();
        let delta = work.apply(tx);

        // Monitor pass: constraints that held get the delta-driven
        // check; constraints already broken need the full check (any
        // delta class can repair a violation).
        let mut ic_ok = Vec::with_capacity(self.monitored.len());
        for (ic, &was_ok) in self.monitored.iter().zip(&self.ic_ok) {
            let ok = if was_ok {
                ic_still_satisfied(&work, &delta, ic)?
            } else {
                work.satisfies(ic)
            };
            ic_ok.push(ok);
        }
        let now_ok = ic_ok.iter().all(|&b| b);

        let mut replanned = false;
        let mut new_active: Option<(Materialized, bool)> = None;
        let mut plan_commit: Option<(Option<RouteChoice>, u64)> = None;
        let (stats, route, mut rebuilt) = if now_ok == self.on_optimized {
            // IC state unchanged: maintain the active materialization.
            let stats = self
                .active
                .apply_delta(&self.db, &work, &delta, budget, cancel)?;
            let route = if now_ok {
                Route::IncrementalOptimized
            } else {
                Route::IncrementalInvalidated
            };
            (stats, route, false)
        } else if now_ok {
            // Violations cleared: the residue-pushed program is sound
            // again. Re-consult the planner among the sound set; its
            // pick is materialized (the optimized route's cached results
            // were discarded at invalidation, so a switch rebuilds from
            // scratch — staying on rectified just maintains it).
            let (kind, choice) = plan_route(&work, &self.plan, &mut self.edb_stats, true);
            replanned = true;
            plan_commit = Some((choice, edb_rows(&work)));
            if kind == AlternativeKind::ResiduePushed {
                let next = Materialized::new_tuned(&work, &self.plan.program, self.tuning)?;
                let stats = rebuild_stats(&next, start);
                new_active = Some((next, true));
                (stats, Route::IncrementalOptimized, true)
            } else {
                let stats = self
                    .active
                    .apply_delta(&self.db, &work, &delta, budget, cancel)?;
                (stats, Route::IncrementalOptimized, false)
            }
        } else {
            // Newly violated: the optimized materialization's cached
            // relations may be unsound on the updated database.
            // Invalidate them and re-answer from the rectified program,
            // re-consulting the planner for fresh post-degradation
            // estimates (only the rectified program is sound now).
            let (_, choice) = plan_route(&work, &self.plan, &mut self.edb_stats, false);
            replanned = true;
            plan_commit = Some((choice, edb_rows(&work)));
            if self.active_opt {
                let next = Materialized::new_tuned(&work, &self.plan.rectified, self.tuning)?;
                let stats = rebuild_stats(&next, start);
                new_active = Some((next, false));
                (stats, Route::IncrementalInvalidated, true)
            } else {
                // The planner had already put us on the rectified
                // program: nothing to invalidate, just maintain it.
                let stats = self
                    .active
                    .apply_delta(&self.db, &work, &delta, budget, cancel)?;
                (stats, Route::IncrementalInvalidated, false)
            }
        };

        work.compact();
        self.db = work;
        self.ic_ok = ic_ok;
        self.on_optimized = now_ok;
        self.route = route;
        if let Some((next, opt)) = new_active {
            self.active = next;
            self.active_opt = opt;
        }
        if let Some((choice, rows)) = plan_commit {
            if choice.is_some() {
                self.choice = choice;
            }
            self.planned_rows = rows;
            self.replans += 1;
        }
        if !replanned {
            let (r, rb) = self.drift_replan(now_ok);
            replanned = r;
            rebuilt |= rb;
        }
        Ok(UpdateOutcome {
            route,
            stats,
            rebuilt,
            violated: self.violated(),
            replanned,
        })
    }

    /// Post-commit drift check: when total EDB rows moved past 2× since
    /// the last consultation, re-price the sound alternatives and — if
    /// the ranking inverted — switch the active materialization to the
    /// planner's new pick. The switch is best-effort: a rebuild failure
    /// keeps the current (still consistent) materialization.
    fn drift_replan(&mut self, ics_hold: bool) -> (bool, bool) {
        if !self.stats_drifted() {
            return (false, false);
        }
        let (kind, choice) = plan_route(&self.db, &self.plan, &mut self.edb_stats, ics_hold);
        if choice.is_some() {
            self.choice = choice;
        }
        self.planned_rows = edb_rows(&self.db);
        self.replans += 1;
        let want_opt = kind == AlternativeKind::ResiduePushed;
        let mut rebuilt = false;
        if want_opt != self.active_opt {
            let prog = if want_opt {
                &self.plan.program
            } else {
                &self.plan.rectified
            };
            if let Ok(next) = Materialized::new_tuned(&self.db, prog, self.tuning) {
                self.active = next;
                self.active_opt = want_opt;
                rebuilt = true;
            }
        }
        (true, rebuilt)
    }

    /// Insert-only fast path: the transaction is applied to the
    /// database in place (appends only) and both the IC monitor and the
    /// materialization work from the appended delta, so the
    /// per-transaction cost is proportional to the delta rather than a
    /// database clone. On any error the appends are truncated away
    /// ([`rollback_inserts`]) and all state is as before the call.
    fn apply_insert_only(
        &mut self,
        tx: &Tx,
        budget: Budget,
        cancel: Option<CancelToken>,
        start: Instant,
    ) -> Result<UpdateOutcome, EngineError> {
        let delta = self.db.apply(tx);

        let mut ic_ok = Vec::with_capacity(self.monitored.len());
        for (ic, &was_ok) in self.monitored.iter().zip(&self.ic_ok) {
            let ok = if was_ok {
                match ic_still_satisfied(&self.db, &delta, ic) {
                    Ok(ok) => ok,
                    Err(e) => {
                        rollback_inserts(&mut self.db, &delta);
                        return Err(e);
                    }
                }
            } else {
                self.db.satisfies(ic)
            };
            ic_ok.push(ok);
        }
        let now_ok = ic_ok.iter().all(|&b| b);

        let mut replanned = false;
        let mut plan_commit: Option<(Option<RouteChoice>, u64)> = None;
        let (stats, route, mut rebuilt) = if now_ok == self.on_optimized {
            match self
                .active
                .apply_delta_appended(&self.db, &delta, budget, cancel)
            {
                Ok(stats) => {
                    let route = if now_ok {
                        Route::IncrementalOptimized
                    } else {
                        Route::IncrementalInvalidated
                    };
                    (stats, route, false)
                }
                Err(e) => {
                    rollback_inserts(&mut self.db, &delta);
                    return Err(e);
                }
            }
        } else if now_ok {
            // Violations cleared: re-consult the planner; its pick among
            // the sound set is materialized (a switch to the
            // residue-pushed program rebuilds, staying on rectified just
            // maintains the current materialization).
            let (kind, choice) = plan_route(&self.db, &self.plan, &mut self.edb_stats, true);
            replanned = true;
            plan_commit = Some((choice, edb_rows(&self.db)));
            if kind == AlternativeKind::ResiduePushed {
                match Materialized::new_tuned(&self.db, &self.plan.program, self.tuning) {
                    Ok(next) => {
                        let stats = rebuild_stats(&next, start);
                        self.active = next;
                        self.active_opt = true;
                        (stats, Route::IncrementalOptimized, true)
                    }
                    Err(e) => {
                        rollback_inserts(&mut self.db, &delta);
                        return Err(e);
                    }
                }
            } else {
                match self
                    .active
                    .apply_delta_appended(&self.db, &delta, budget, cancel)
                {
                    Ok(stats) => (stats, Route::IncrementalOptimized, false),
                    Err(e) => {
                        rollback_inserts(&mut self.db, &delta);
                        return Err(e);
                    }
                }
            }
        } else {
            // Newly violated: only the rectified program is sound;
            // re-consult the planner for fresh post-degradation
            // estimates.
            let (_, choice) = plan_route(&self.db, &self.plan, &mut self.edb_stats, false);
            replanned = true;
            plan_commit = Some((choice, edb_rows(&self.db)));
            if self.active_opt {
                match Materialized::new_tuned(&self.db, &self.plan.rectified, self.tuning) {
                    Ok(next) => {
                        let stats = rebuild_stats(&next, start);
                        self.active = next;
                        self.active_opt = false;
                        (stats, Route::IncrementalInvalidated, true)
                    }
                    Err(e) => {
                        rollback_inserts(&mut self.db, &delta);
                        return Err(e);
                    }
                }
            } else {
                match self
                    .active
                    .apply_delta_appended(&self.db, &delta, budget, cancel)
                {
                    Ok(stats) => (stats, Route::IncrementalInvalidated, false),
                    Err(e) => {
                        rollback_inserts(&mut self.db, &delta);
                        return Err(e);
                    }
                }
            }
        };

        self.ic_ok = ic_ok;
        self.on_optimized = now_ok;
        self.route = route;
        if let Some((choice, rows)) = plan_commit {
            if choice.is_some() {
                self.choice = choice;
            }
            self.planned_rows = rows;
            self.replans += 1;
        }
        if !replanned {
            let (r, rb) = self.drift_replan(now_ok);
            replanned = r;
            rebuilt |= rb;
        }
        Ok(UpdateOutcome {
            route,
            stats,
            rebuilt,
            violated: self.violated(),
            replanned,
        })
    }

    /// The current database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The optimizer's plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The route that answers queries right now.
    pub fn route(&self) -> Route {
        self.route
    }

    /// The cost planner's latest verdict (`None` when every pricing
    /// pass failed).
    pub fn route_choice(&self) -> Option<&RouteChoice> {
        self.choice.as_ref()
    }

    /// Planner consultations over this query's lifetime (initial
    /// materialization, route transitions, drift replans).
    pub fn replans(&self) -> u64 {
        self.replans
    }

    /// The generation-keyed EDB statistics cache the planner reads.
    pub fn edb_stats(&self) -> &EdbStats {
        &self.edb_stats
    }

    /// The constraints the monitor watches (those the optimizer's
    /// rewrites depend on).
    pub fn monitored(&self) -> &[Constraint] {
        &self.monitored
    }

    /// Indices of currently violated monitored constraints.
    pub fn violated(&self) -> Vec<usize> {
        self.ic_ok
            .iter()
            .enumerate()
            .filter_map(|(i, &ok)| (!ok).then_some(i))
            .collect()
    }

    /// True while every monitored constraint holds (the optimized route
    /// is live).
    pub fn on_optimized_route(&self) -> bool {
        self.on_optimized
    }

    /// The active materialization's IDB relations.
    pub fn idb(&self) -> &BTreeMap<Pred, Relation> {
        self.active.idb()
    }

    /// The active materialization's relation for `pred`.
    pub fn relation(&self, pred: impl Into<Pred>) -> Option<&Relation> {
        self.active.relation(pred)
    }

    /// Answers to a goal atom over the active materialization. Bound
    /// goal arguments probe the relation's dictionary index
    /// ([`answer_goal`]) instead of filtering a full scan.
    pub fn answers(&self, goal: &Atom) -> Vec<Tuple> {
        let Some(rel) = self.active.relation(goal.pred) else {
            return Vec::new();
        };
        answer_goal(rel, goal, rel.all_rows())
    }
}

/// Synthesizes counters for a from-scratch route rebuild.
fn rebuild_stats(next: &Materialized, start: Instant) -> UpdateStats {
    UpdateStats {
        from_scratch: true,
        rounds: next.initial_rounds(),
        elapsed_ms: start.elapsed().as_millis() as u64,
        ..UpdateStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datalog::parser::parse_unit;
    use semrec_engine::int_tuple;

    /// The fanout scenario (guarded reachability): the IC lets the
    /// optimizer eliminate the `witness` subgoal from the recursion, so
    /// the optimized route's soundness depends on every edge target
    /// keeping a witness.
    fn fanout_query() -> MaintainedQuery {
        let unit = parse_unit(
            "reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- edge(X, Z), witness(Z, W), reach(Z, Y).\n\
             ic ic1: edge(X, Z) -> witness(Z, W).",
        )
        .expect("parse");
        let mut db = Database::new();
        for v in 0..6i64 {
            db.insert("edge", int_tuple(&[v, v + 1]));
        }
        for v in 0..=6i64 {
            db.insert("witness", int_tuple(&[v, v * 1000]));
        }
        let q = MaintainedQuery::new(
            db,
            &unit.program(),
            &unit.constraints,
            OptimizerConfig::default(),
            1,
        )
        .expect("maintained query");
        assert!(
            !q.monitored().is_empty(),
            "optimizer should eliminate the witness subgoal under ic1"
        );
        q
    }

    fn scratch_answers(q: &MaintainedQuery, goal: &Atom) -> Vec<Tuple> {
        let res = semrec_engine::evaluate(
            q.db(),
            &q.plan().rectified,
            semrec_engine::Strategy::SemiNaive,
        )
        .expect("scratch eval");
        let mut a = res.answers(goal);
        a.sort();
        a
    }

    fn goal(src: &str) -> Atom {
        semrec_datalog::parser::parse_atom(src).expect("goal parse")
    }

    #[test]
    fn clean_inserts_stay_on_optimized_route() {
        let mut q = fanout_query();
        assert_eq!(q.route(), Route::Optimized);
        assert!(q.on_optimized_route());
        // Extend the chain with a witnessed node: the IC keeps holding.
        let mut tx = Tx::new();
        tx.insert("edge", int_tuple(&[6, 7]));
        tx.insert("witness", int_tuple(&[7, 7000]));
        let out = q.apply(&tx, Budget::unlimited(), None).expect("apply");
        assert_eq!(out.route, Route::IncrementalOptimized);
        assert!(!out.rebuilt);
        assert!(out.violated.is_empty());
        assert!(!out.stats.from_scratch);
        let g = goal("reach(0, Y)");
        let mut got = q.answers(&g);
        got.sort();
        assert_eq!(got, scratch_answers(&q, &g));
        assert!(got.contains(&int_tuple(&[0, 7])));
    }

    #[test]
    fn violating_insert_invalidates_then_recovers() {
        let mut q = fanout_query();
        let g = goal("reach(0, Y)");

        // Insert an edge to a witness-less node: ic1 breaks, the
        // optimized materialization is invalidated, and the rectified
        // program answers (it still sees the new edge).
        let mut tx = Tx::new();
        tx.insert("edge", int_tuple(&[2, 50]));
        let out = q.apply(&tx, Budget::unlimited(), None).expect("apply");
        assert_eq!(out.route, Route::IncrementalInvalidated);
        assert!(out.rebuilt);
        assert_eq!(out.violated, vec![0]);
        let mut got = q.answers(&g);
        got.sort();
        assert_eq!(got, scratch_answers(&q, &g));
        assert!(got.contains(&int_tuple(&[0, 50])));

        // While violated, further updates maintain the rectified
        // materialization incrementally. The optimized program would
        // (unsoundly) recurse through the witness-less node 50 and
        // derive reach(0, 60); the rectified route must not.
        let mut tx = Tx::new();
        tx.insert("edge", int_tuple(&[50, 60]));
        let out = q.apply(&tx, Budget::unlimited(), None).expect("apply");
        assert_eq!(out.route, Route::IncrementalInvalidated);
        assert!(!out.rebuilt);
        let mut got = q.answers(&g);
        got.sort();
        assert_eq!(got, scratch_answers(&q, &g));
        assert!(!got.contains(&int_tuple(&[0, 60])));

        // Deleting the offending edges clears the violation; the
        // optimized route is rebuilt and answering again.
        let mut tx = Tx::new();
        tx.delete("edge", int_tuple(&[2, 50]));
        tx.delete("edge", int_tuple(&[50, 60]));
        let out = q.apply(&tx, Budget::unlimited(), None).expect("apply");
        assert_eq!(out.route, Route::IncrementalOptimized);
        assert!(out.rebuilt);
        assert!(out.violated.is_empty());
        assert!(q.on_optimized_route());
        let mut got = q.answers(&g);
        got.sort();
        assert_eq!(got, scratch_answers(&q, &g));
        assert!(!got.contains(&int_tuple(&[0, 50])));
    }

    #[test]
    fn budget_error_rolls_back_monitor_and_database() {
        let mut q = fanout_query();
        let before_edges = q.db().get("edge".into()).map(|r| r.len()).unwrap_or(0);
        let before = q.answers(&goal("reach(0, Y)")).len();
        let mut tx = Tx::new();
        tx.insert("edge", int_tuple(&[6, 7]));
        tx.insert("witness", int_tuple(&[7, 7000]));
        let err = q
            .apply(&tx, Budget::unlimited().with_max_iterations(0), None)
            .expect_err("zero iteration budget must fail");
        assert!(matches!(err, EngineError::IterationLimit(_)));
        assert_eq!(
            q.db().get("edge".into()).map(|r| r.len()).unwrap_or(0),
            before_edges
        );
        assert_eq!(q.route(), Route::Optimized);
        assert!(q.violated().is_empty());
        assert_eq!(q.answers(&goal("reach(0, Y)")).len(), before);
    }
}
