//! Post-transformation program cleanup: removing rules that can never fire
//! and rules unreachable from the predicates of interest (the paper's "once
//! the rule for p^{k-1} is deleted every rule making use of the predicate
//! p^{k-1} can be deleted", generalized).

use semrec_datalog::atom::Pred;
use semrec_datalog::program::Program;
use std::collections::BTreeSet;

/// Removes, to a fixpoint:
/// * rules containing a trivially false comparison;
/// * rules with a body atom whose predicate is *IDB-like* (in `idb_like`)
///   but has no defining rule left (it can never hold); predicates outside
///   `idb_like` are assumed extensional — they may hold facts even if the
///   program never defines them (e.g. relations only mentioned by ICs);
///
/// then drops rules whose head predicate is not reachable from `roots`.
pub fn remove_dead_rules(
    program: &Program,
    roots: &BTreeSet<Pred>,
    idb_like: &BTreeSet<Pred>,
) -> Program {
    let mut rules = program.rules.clone();

    loop {
        let defined: BTreeSet<Pred> = rules.iter().map(|r| r.head.pred).collect();
        let before = rules.len();
        rules.retain(|r| {
            if r.body_cmps().any(|c| c.is_trivially_false()) {
                return false;
            }
            r.body_atoms()
                .all(|a| !idb_like.contains(&a.pred) || defined.contains(&a.pred))
        });
        if rules.len() == before {
            break;
        }
    }

    // Reachability from the roots over the remaining rules.
    let mut reachable: BTreeSet<Pred> = roots.clone();
    loop {
        let mut changed = false;
        for r in &rules {
            if reachable.contains(&r.head.pred) {
                for a in r.body_atoms() {
                    changed |= reachable.insert(a.pred);
                }
            }
        }
        if !changed {
            break;
        }
    }
    rules.retain(|r| reachable.contains(&r.head.pred));
    Program::new(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datalog::parser::parse_unit;

    fn clean(src: &str, roots: &[&str], idb_like: &[&str]) -> Program {
        let p = parse_unit(src).unwrap().program();
        remove_dead_rules(
            &p,
            &roots.iter().map(|s| Pred::new(s)).collect(),
            &idb_like.iter().map(|s| Pred::new(s)).collect(),
        )
    }

    #[test]
    fn drops_undefined_body_predicates_transitively() {
        let p = clean(
            "a(X) :- ghost(X).
             b(X) :- a(X).
             c(X) :- e(X).",
            &["b", "c"],
            &["a", "b", "c", "ghost"],
        );
        // ghost is IDB-like but undefined → a dropped → b dropped.
        assert_eq!(p.len(), 1);
        assert_eq!(p.rules[0].head.pred, Pred::new("c"));
    }

    #[test]
    fn non_idb_predicates_are_assumed_extensional() {
        // ghost is NOT declared IDB-like → kept (it may hold EDB facts).
        let p = clean("a(X) :- ghost(X).", &["a"], &["a"]);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn drops_trivially_false_rules() {
        let p = clean("a(X) :- e(X), 1 > 2. a(X) :- e(X).", &["a"], &["a"]);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn drops_unreachable_rules() {
        let p = clean("a(X) :- e(X). z(X) :- e(X).", &["a"], &["a", "z"]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.rules[0].head.pred, Pred::new("a"));
    }

    #[test]
    fn keeps_recursive_structures() {
        let p = clean(
            "t(X,Y) :- e(X,Y). t(X,Y) :- e(X,Z), t(Z,Y).",
            &["t"],
            &["t"],
        );
        assert_eq!(p.len(), 2);
    }
}
