//! Structural program minimization: removing redundant body atoms and
//! subsumed rules.
//!
//! This is the *syntactic* (constraint-free) counterpart of the residue
//! machinery, corresponding to the optimization line the paper builds on
//! (Sagiv's datalog minimization \[13\]; Lakshmanan & Hernández's redundant
//! subgoal elimination \[6\]): a body atom is redundant when a folding
//! homomorphism fixing the rule's exported variables maps the body into
//! the body without it, and a rule is redundant when another rule for the
//! same head subsumes it. Combined with the IC-driven `push`/`baseline`
//! rewrites, this keeps transformed programs tidy.

use crate::hom::{extend_hom, match_into};
use semrec_datalog::atom::Atom;
use semrec_datalog::literal::Literal;
use semrec_datalog::program::Program;
use semrec_datalog::rule::Rule;
use semrec_datalog::subst::Subst;
use semrec_datalog::symbol::Symbol;
use std::collections::BTreeSet;

/// Variables a body-atom-removal homomorphism must fix: everything
/// exported (head) or consumed by a comparison. Variables of other atoms
/// may be remapped — consistently — which is exactly what makes e.g.
/// `e(X, Y), e(X, Z)` minimizable to `e(X, Y)` when `Z` is otherwise
/// unused.
fn exported_vars(rule: &Rule) -> BTreeSet<Symbol> {
    let mut out: BTreeSet<Symbol> = rule.head.vars().collect();
    for c in rule.body_cmps() {
        out.extend(c.vars());
    }
    out
}

/// Removes redundant body atoms from one rule (to a fixpoint). Comparisons
/// are never removed.
pub fn minimize_rule(rule: &Rule) -> Rule {
    let mut rule = rule.clone();
    let protected = exported_vars(&rule);
    loop {
        let atoms: Vec<(usize, Atom)> = rule
            .body
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.as_atom().map(|a| (i, a.clone())))
            .collect();
        let mut removed = None;
        'candidates: for &(bi, ref b) in &atoms {
            // Sources: every atom; targets: every atom except B. The
            // homomorphism must fix protected vars; if it exists, B's
            // constraint is implied by the rest.
            let targets: Vec<&Atom> = atoms
                .iter()
                .filter(|(i, _)| *i != bi)
                .map(|(_, a)| a)
                .collect();
            if targets.is_empty() {
                continue;
            }
            let sources: Vec<&Atom> = atoms.iter().map(|(_, a)| a).collect();
            // Seed: h(B) must land on a target (try each); the rest of the
            // body must follow.
            for t in &targets {
                if let Some(h) = match_into(b, t, &Subst::new(), &protected) {
                    let others: Vec<&Atom> = sources
                        .iter()
                        .copied()
                        .filter(|a| !std::ptr::eq(*a, b as &Atom))
                        .collect();
                    if extend_hom(&others, 0, &h, &protected, &targets) {
                        removed = Some(bi);
                        break 'candidates;
                    }
                }
            }
        }
        match removed {
            Some(bi) => {
                rule.body.remove(bi);
            }
            None => return rule,
        }
    }
}

/// True if `general` subsumes `specific`: a substitution θ of `general`'s
/// variables with `head(general)·θ = head(specific)` and every body
/// literal of `general`·θ occurring in `specific`'s body. Then `specific`
/// derives nothing `general` would not.
pub fn rule_subsumes(general: &Rule, specific: &Rule) -> bool {
    if general.head.pred != specific.head.pred || general.head.arity() != specific.head.arity() {
        return false;
    }
    let mut theta = Subst::new();
    if !semrec_datalog::unify::match_atom(&mut theta, &general.head, &specific.head) {
        return false;
    }
    subsume_body(general, specific, 0, theta)
}

fn subsume_body(general: &Rule, specific: &Rule, i: usize, theta: Subst) -> bool {
    let Some(lit) = general.body.get(i) else {
        return true;
    };
    match lit {
        Literal::Atom(a) => {
            for target in specific.body_atoms() {
                let mut t2 = theta.clone();
                if semrec_datalog::unify::match_atom(&mut t2, a, target)
                    && subsume_body(general, specific, i + 1, t2)
                {
                    return true;
                }
            }
            false
        }
        // Negated subgoals must map onto identical negated subgoals; be
        // conservative and require syntactic presence after instantiation.
        Literal::Neg(a) => {
            let inst = theta.apply_atom(a);
            if specific.body.iter().any(|l| l.as_neg() == Some(&inst))
                && inst.vars().all(|v| specific.vars().contains(&v))
            {
                subsume_body(general, specific, i + 1, theta)
            } else {
                false
            }
        }
        Literal::Cmp(c) => {
            // Comparisons must map onto identical comparisons (or be
            // trivially true after instantiation).
            let inst = theta.apply_cmp(c);
            if inst.is_trivially_true() {
                return subsume_body(general, specific, i + 1, theta);
            }
            let present = specific.body_cmps().any(|sc| {
                *sc == inst || (sc.lhs == inst.rhs && sc.rhs == inst.lhs && sc.op == inst.op.flip())
            });
            if present
                && inst
                    .vars()
                    .all(|v| theta.get(v).is_some() || specific.vars().contains(&v))
            {
                subsume_body(general, specific, i + 1, theta)
            } else {
                false
            }
        }
    }
}

/// Minimizes every rule and drops rules subsumed by another rule of the
/// program (first occurrence wins on mutual subsumption).
pub fn minimize_program(program: &Program) -> Program {
    let minimized: Vec<Rule> = program.rules.iter().map(minimize_rule).collect();
    let mut keep: Vec<bool> = vec![true; minimized.len()];
    for i in 0..minimized.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..minimized.len() {
            if i == j || !keep[j] {
                continue;
            }
            if rule_subsumes(&minimized[i], &minimized[j]) {
                // Keep the earlier rule on mutual (variant) subsumption.
                if !(j < i && rule_subsumes(&minimized[j], &minimized[i])) {
                    keep[j] = false;
                }
            }
        }
    }
    Program::new(
        minimized
            .into_iter()
            .zip(keep)
            .filter(|(_, k)| *k)
            .map(|(r, _)| r)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datalog::parser::{parse_rule, parse_unit};
    use semrec_engine::{evaluate, int_tuple, Database, Strategy};

    #[test]
    fn removes_duplicate_atom() {
        let r = parse_rule("p(X, Y) :- e(X, Y), e(X, Y).").unwrap();
        let m = minimize_rule(&r);
        assert_eq!(m.to_string(), "p(X, Y) :- e(X, Y).");
    }

    #[test]
    fn removes_existentially_weaker_atom() {
        // e(X, Z) with Z unused elsewhere is implied by e(X, Y).
        let r = parse_rule("p(X, Y) :- e(X, Y), e(X, Z).").unwrap();
        let m = minimize_rule(&r);
        assert_eq!(m.body.len(), 1);
    }

    #[test]
    fn keeps_atoms_bound_to_head_or_cmps() {
        let r = parse_rule("p(X, Y, Z) :- e(X, Y), e(X, Z).").unwrap();
        assert_eq!(minimize_rule(&r).body.len(), 2);
        let r = parse_rule("p(X, Y) :- e(X, Y), e(X, Z), Z > 3.").unwrap();
        assert_eq!(minimize_rule(&r).body.len(), 3);
    }

    #[test]
    fn chain_atoms_are_not_removed() {
        let r = parse_rule("p(X, Y) :- e(X, Z), e(Z, Y).").unwrap();
        assert_eq!(minimize_rule(&r).body.len(), 2);
    }

    #[test]
    fn folding_cascade_is_found() {
        // e(X, Y), e(X, Z), f(Z, W): {e(X,Z), f(Z,W)} folds onto
        // {e(X,Y), f(Y,W')}? No f(Y, …) exists — so nothing is removable.
        let r = parse_rule("p(X, Y) :- e(X, Y), e(X, Z), f(Z, W).").unwrap();
        assert_eq!(minimize_rule(&r).body.len(), 3);
        // But with f on Y too, the Z-branch folds away entirely… one atom
        // at a time: first f(Z,W) → f(Y,V) (Z↦Y, W↦V), then e(X,Z) → e(X,Y).
        let r = parse_rule("p(X, Y) :- e(X, Y), f(Y, V), e(X, Z), f(Z, W).").unwrap();
        assert_eq!(minimize_rule(&r).body.len(), 2);
    }

    #[test]
    fn rule_subsumption_drops_specializations() {
        let p = parse_unit(
            "q(X) :- e(X, Y).
             q(X) :- e(X, Y), f(Y).",
        )
        .unwrap()
        .program();
        let m = minimize_program(&p);
        assert_eq!(m.len(), 1);
        assert_eq!(m.rules[0].to_string(), "q(X) :- e(X, Y).");
    }

    #[test]
    fn variant_rules_keep_one_copy() {
        let p = parse_unit(
            "q(X) :- e(X, Y).
             q(A) :- e(A, B).",
        )
        .unwrap()
        .program();
        assert_eq!(minimize_program(&p).len(), 1);
    }

    #[test]
    fn cmp_guarded_rules_are_not_subsumed_by_cmpless_ones() {
        // The guarded rule IS subsumed by the unguarded one (it derives a
        // subset), and must be dropped; the reverse direction must not
        // drop the unguarded rule.
        let p = parse_unit(
            "q(X) :- e(X, Y), Y > 3.
             q(X) :- e(X, Y).",
        )
        .unwrap()
        .program();
        let m = minimize_program(&p);
        assert_eq!(m.len(), 1);
        assert!(m.rules[0].body_cmps().count() == 0);
    }

    #[test]
    fn minimization_preserves_semantics() {
        let p = parse_unit(
            "t(X, Y) :- e(X, Y), e(X, Z).
             t(X, Y) :- e(X, W), t(W, Y), t(W, Y).",
        )
        .unwrap()
        .program();
        let m = minimize_program(&p);
        assert!(
            m.rules.iter().map(|r| r.body.len()).sum::<usize>()
                < p.rules.iter().map(|r| r.body.len()).sum::<usize>()
        );
        let mut db = Database::new();
        for (a, b) in [(0, 1), (1, 2), (2, 0), (1, 3)] {
            db.insert("e", int_tuple(&[a, b]));
        }
        let x = evaluate(&db, &p, Strategy::SemiNaive).unwrap();
        let y = evaluate(&db, &m, Strategy::SemiNaive).unwrap();
        assert_eq!(
            x.relation("t").unwrap().sorted_tuples(),
            y.relation("t").unwrap().sorted_tuples()
        );
    }
}

#[cfg(test)]
mod negation_tests {
    use super::*;
    use semrec_datalog::parser::parse_unit;

    #[test]
    fn negated_subgoals_block_subsumption_unless_identical() {
        let p = parse_unit(
            "q(X) :- e(X, Y), !bad(X).
             q(X) :- e(X, Y), !bad(X), f(Y).",
        )
        .unwrap()
        .program();
        // The first rule subsumes the second (same negation, fewer atoms).
        let m = minimize_program(&p);
        assert_eq!(m.len(), 1);

        let p = parse_unit(
            "q(X) :- e(X, Y).
             q(X) :- e(X, Y), !bad(X).",
        )
        .unwrap()
        .program();
        // Rule 2 ⊆ rule 1 (extra negative condition): rule 2 is dropped.
        let m = minimize_program(&p);
        assert_eq!(m.len(), 1);
        assert!(m.rules[0].body.iter().all(|l| l.as_neg().is_none()));
    }

    #[test]
    fn negation_is_never_removed_as_redundant() {
        let p = parse_unit("q(X) :- e(X, Y), !e(Y, X).").unwrap().program();
        let m = minimize_program(&p);
        assert_eq!(m.rules[0].body.len(), 2);
    }
}
