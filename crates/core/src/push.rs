//! Pushing residues inside recursion (§4): atom elimination, atom
//! introduction, and subtree pruning, applied through a *full-commitment*
//! variant of Algorithm 4.1's isolation.
//!
//! # Why not edit the α-rules directly
//!
//! The paper applies each optimization to "the i-th α-rule" of the isolated
//! program. In the α/β/γ structure, a proof tree that passes through the
//! i-th α-rule is only guaranteed to match the first `i+1` elements of the
//! sequence — it may still deviate below. A residue, however, is justified
//! by premises (the IC's matched atoms) that can sit at *any* level of the
//! sequence: in Example 4.1 the `boss` premise sits at level 4 while the
//! eliminated `experienced` atom sits at level 1. Editing the first α-rule
//! would therefore also affect trees in which the premise never occurs.
//!
//! This module instead isolates the sequence with commitment at the top:
//!
//! * a **strict chain** `p → σ1 → σ2 → … → σk` whose trees match the full
//!   sequence, built with the unfolding's variable renaming (so residue
//!   variables attach syntactically);
//! * **deviation chains** covering trees that match a proper prefix and
//!   then apply a different rule;
//! * the untouched rules for every other case.
//!
//! Every tree has exactly one parse, so the construction is equivalence-
//! preserving. Optimizations are applied *only to strict-chain rules*,
//! where the full sequence — and hence every premise — is guaranteed:
//!
//! * a **conditional** residue `E → …` splits the strict chain into an
//!   optimized chain carrying `E` (each conjunct checked at the deepest
//!   level where its variables are visible) and complement chains carrying
//!   the disjuncts of `¬E`;
//! * **atom elimination** removes the redundant atom from its level in the
//!   optimized chain;
//! * **atom introduction** adds the implied atom (small relation or
//!   evaluable filter) at the deepest level where its variables are
//!   visible;
//! * **subtree pruning** simply deletes the optimized chain — those trees
//!   provably derive nothing.

use crate::cleanup::remove_dead_rules;
use crate::residue::{Residue, ResidueHead};
use crate::sequence::Unfolding;
use semrec_datalog::analysis::{safety, RecursionInfo};
use semrec_datalog::atom::{Atom, Pred};
use semrec_datalog::literal::{Cmp, Literal};
use semrec_datalog::program::Program;
use semrec_datalog::rule::Rule;
use semrec_datalog::subst::Subst;
use semrec_datalog::symbol::Symbol;
use semrec_datalog::term::Term;
use std::collections::BTreeSet;
use std::fmt;

/// The kind of optimization a residue induced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OptKind {
    /// §4(1): a redundant atom deleted from the sequence.
    AtomElimination,
    /// §4(2): an implied evaluable filter or small relation added.
    AtomIntroduction,
    /// §4(3): the sequence's trees pruned (conditionally or not).
    SubtreePruning,
}

impl fmt::Display for OptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OptKind::AtomElimination => "atom elimination",
            OptKind::AtomIntroduction => "atom introduction",
            OptKind::SubtreePruning => "subtree pruning",
        };
        f.write_str(s)
    }
}

/// Why a residue was not pushed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SkipReason {
    /// Fact residue with a database-atom head that is neither useful
    /// (elimination) nor whitelisted as a small relation (introduction).
    NotUsefulNotSmall,
    /// The optimization kind is disabled by policy.
    Disabled,
    /// A condition (or the introduced atom) has variables not all visible
    /// at any single level of the strict chain.
    NotLocalizable,
    /// Deleting the atom would leave an unsafe rule (e.g. an output
    /// variable would become unbound).
    WouldBreakSafety,
    /// The target atom was already removed by an earlier residue.
    AlreadyEliminated,
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SkipReason::NotUsefulNotSmall => {
                "head atom neither occurs in the sequence nor is a small relation"
            }
            SkipReason::Disabled => "optimization disabled by policy",
            SkipReason::NotLocalizable => "variables not visible together at any level",
            SkipReason::WouldBreakSafety => "deletion would leave an unsafe rule",
            SkipReason::AlreadyEliminated => "target atom already eliminated",
        };
        f.write_str(s)
    }
}

/// A successfully pushed residue.
#[derive(Clone, Debug)]
pub struct Applied {
    /// What kind of optimization.
    pub kind: OptKind,
    /// The residue that induced it.
    pub residue: Residue,
    /// Human-readable description.
    pub note: String,
}

/// A residue that could not be pushed.
#[derive(Clone, Debug)]
pub struct Skipped {
    /// The residue.
    pub residue: Residue,
    /// Why.
    pub reason: SkipReason,
}

/// Policy knobs for pushing.
#[derive(Clone, Debug)]
pub struct PushPolicy {
    /// EDB predicates considered small enough for atom introduction.
    pub small_relations: BTreeSet<Pred>,
    /// Enable §4(1).
    pub elimination: bool,
    /// Enable §4(2).
    pub introduction: bool,
    /// Enable §4(3).
    pub pruning: bool,
}

impl Default for PushPolicy {
    fn default() -> Self {
        PushPolicy {
            small_relations: BTreeSet::new(),
            elimination: true,
            introduction: true,
            pruning: true,
        }
    }
}

/// One strict chain: the per-step bodies (level 1 first). The recursive
/// subgoal inside each body still carries the original predicate `p`; it is
/// retargeted to chain-local auxiliary predicates on emission.
#[derive(Clone, Debug)]
struct Chain {
    steps: Vec<Vec<Literal>>,
}

/// A pushing session for one (program, predicate, sequence).
pub struct Pusher<'a> {
    program: &'a Program,
    info: &'a RecursionInfo,
    unfolding: &'a Unfolding,
    chains: Vec<Chain>,
    applied: Vec<Applied>,
    skipped: Vec<Skipped>,
}

impl<'a> Pusher<'a> {
    /// Starts a session. `program` must be rectified and `unfolding` must
    /// come from [`crate::sequence::unfold`] on it.
    pub fn new(program: &'a Program, info: &'a RecursionInfo, unfolding: &'a Unfolding) -> Self {
        let k = unfolding.seq.len();
        let mut steps = Vec::with_capacity(k);
        for i in 1..=k {
            let rule = &program.rules[unfolding.seq[i - 1]];
            let sigma = &unfolding.step_substs[i - 1];
            let body: Vec<Literal> = rule.body.iter().map(|l| sigma.apply_literal(l)).collect();
            steps.push(body);
        }
        Pusher {
            program,
            info,
            unfolding,
            chains: vec![Chain { steps }],
            applied: Vec::new(),
            skipped: Vec::new(),
        }
    }

    /// Variables visible at level `i` (1-based) of a chain: the level's
    /// head arguments plus its body.
    fn level_vars(&self, chain: &Chain, i: usize) -> BTreeSet<Symbol> {
        let mut out: BTreeSet<Symbol> = self.unfolding.call_args[i - 1]
            .iter()
            .filter_map(|t| t.as_var())
            .collect();
        for l in &chain.steps[i - 1] {
            out.extend(l.vars());
        }
        out
    }

    /// The deepest level at which all of `vars` are visible.
    fn home_level(&self, chain: &Chain, vars: &BTreeSet<Symbol>) -> Option<usize> {
        (1..=chain.steps.len())
            .rev()
            .find(|&i| vars.iter().all(|v| self.level_vars(chain, i).contains(v)))
    }

    /// Applies one residue; records the outcome.
    pub fn push(&mut self, residue: &Residue, policy: &PushPolicy) {
        let outcome = match &residue.head {
            ResidueHead::Null => {
                if policy.pruning {
                    self.push_pruning(residue)
                } else {
                    Err(SkipReason::Disabled)
                }
            }
            ResidueHead::Cmp(_) => {
                if policy.introduction {
                    self.push_introduction(residue)
                } else {
                    Err(SkipReason::Disabled)
                }
            }
            ResidueHead::Atom(a) => {
                if residue.useful_at.is_some() {
                    if policy.elimination {
                        self.push_elimination(residue)
                    } else {
                        Err(SkipReason::Disabled)
                    }
                } else if policy.small_relations.contains(&a.pred) {
                    if policy.introduction {
                        self.push_introduction(residue)
                    } else {
                        Err(SkipReason::Disabled)
                    }
                } else {
                    Err(SkipReason::NotUsefulNotSmall)
                }
            }
        };
        match outcome {
            Ok(applied) => self.applied.push(applied),
            Err(reason) => self.skipped.push(Skipped {
                residue: residue.clone(),
                reason,
            }),
        }
    }

    /// Splits `chain` into the optimized chain (conditions added, `edit`
    /// applied) and the `¬E` complement chains. Returns `None` if some
    /// condition is not localizable or the edit fails.
    fn split_chain(
        &self,
        chain: &Chain,
        conditions: &[Cmp],
        edit: impl Fn(&mut Chain) -> Result<(), SkipReason>,
    ) -> Result<Vec<Chain>, SkipReason> {
        // Locate each condition's home level first.
        let mut homes = Vec::with_capacity(conditions.len());
        for c in conditions {
            let vars: BTreeSet<Symbol> = c.vars().collect();
            let home = self
                .home_level(chain, &vars)
                .ok_or(SkipReason::NotLocalizable)?;
            homes.push(home);
        }

        let mut out = Vec::new();
        // Optimized chain: all conditions + the edit.
        let mut opt = chain.clone();
        for (c, &home) in conditions.iter().zip(&homes) {
            opt.steps[home - 1].push(Literal::Cmp(*c));
        }
        edit(&mut opt)?;
        out.push(opt);
        // Complement chains: ¬(E1 ∧ … ∧ Em) as disjoint disjuncts
        // E1 … E_{j-1} ∧ ¬E_j.
        for j in 0..conditions.len() {
            let mut comp = chain.clone();
            for (c, &home) in conditions.iter().zip(&homes).take(j) {
                comp.steps[home - 1].push(Literal::Cmp(*c));
            }
            comp.steps[homes[j] - 1].push(Literal::Cmp(conditions[j].negate()));
            out.push(comp);
        }
        Ok(out)
    }

    fn rebuild_chains(
        &mut self,
        residue: &Residue,
        edit: impl Fn(&Self, &mut Chain) -> Result<(), SkipReason>,
    ) -> Result<usize, SkipReason> {
        let mut new_chains = Vec::new();
        let mut touched = 0usize;
        for chain in &self.chains {
            match self.split_chain(chain, &residue.body, |c| edit(self, c)) {
                Ok(mut split) => {
                    touched += 1;
                    new_chains.append(&mut split);
                }
                Err(SkipReason::AlreadyEliminated) => new_chains.push(chain.clone()),
                Err(e) => return Err(e),
            }
        }
        if touched == 0 {
            return Err(SkipReason::AlreadyEliminated);
        }
        self.chains = new_chains;
        Ok(touched)
    }

    fn push_elimination(&mut self, residue: &Residue) -> Result<Applied, SkipReason> {
        let at = residue.useful_at.expect("checked by caller");
        let target = self.unfolding.body[at.body_index].lit.clone();
        let level = at.step;
        let unfolding = self.unfolding;
        self.rebuild_chains(residue, |s, chain| {
            let body = &mut chain.steps[level - 1];
            let Some(pos) = body.iter().position(|l| l == &target) else {
                return Err(SkipReason::AlreadyEliminated);
            };
            body.remove(pos);
            // The level's rule must stay safe and range restricted.
            if !s.level_rule_safe(chain, level, unfolding) {
                return Err(SkipReason::WouldBreakSafety);
            }
            Ok(())
        })?;
        Ok(Applied {
            kind: OptKind::AtomElimination,
            residue: residue.clone(),
            note: format!("deleted {} at level {}", target, level),
        })
    }

    fn push_pruning(&mut self, residue: &Residue) -> Result<Applied, SkipReason> {
        // The optimized chain derives nothing: drop it, keep complements.
        let mut new_chains = Vec::new();
        for chain in &self.chains {
            let split = self.split_chain(chain, &residue.body, |_| Ok(()))?;
            // split[0] is the optimized (pruned) chain; keep the rest.
            new_chains.extend(split.into_iter().skip(1));
        }
        self.chains = new_chains;
        Ok(Applied {
            kind: OptKind::SubtreePruning,
            residue: residue.clone(),
            note: if residue.body.is_empty() {
                "pruned the sequence unconditionally".to_owned()
            } else {
                format!(
                    "pruned the sequence when {}",
                    residue
                        .body
                        .iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join(" and ")
                )
            },
        })
    }

    fn push_introduction(&mut self, residue: &Residue) -> Result<Applied, SkipReason> {
        // Build the literal to add; IC-existential variables become fresh
        // locals.
        let unfolding_vars: BTreeSet<Symbol> =
            self.unfolding.to_rule().vars().into_iter().collect();
        let lit: Literal = match &residue.head {
            ResidueHead::Cmp(c) => Literal::Cmp(*c),
            ResidueHead::Atom(a) => {
                let mut fresh = Subst::new();
                for v in a.vars() {
                    if !unfolding_vars.contains(&v) {
                        fresh.insert(v, Term::Var(Symbol::fresh(v.as_str())));
                    }
                }
                Literal::Atom(fresh.apply_atom(a))
            }
            ResidueHead::Null => unreachable!("pruning handled separately"),
        };
        // Anchor on the bound (unfolding) variables only.
        let anchor_vars: BTreeSet<Symbol> = lit
            .vars()
            .into_iter()
            .filter(|v| unfolding_vars.contains(v))
            .collect();
        let lit2 = lit.clone();
        self.rebuild_chains(residue, move |s, chain| {
            let home = s
                .home_level(chain, &anchor_vars)
                .ok_or(SkipReason::NotLocalizable)?;
            chain.steps[home - 1].push(lit2.clone());
            Ok(())
        })?;
        Ok(Applied {
            kind: OptKind::AtomIntroduction,
            residue: residue.clone(),
            note: format!("introduced {lit}"),
        })
    }

    fn level_rule_safe(&self, chain: &Chain, level: usize, unfolding: &Unfolding) -> bool {
        let head = Atom::new(Pred::new("chk@"), unfolding.call_args[level - 1].clone());
        let rule = Rule::new(head, chain.steps[level - 1].clone());
        rule.is_range_restricted() && safety::unsafe_vars(&rule).is_empty()
    }

    /// Outcomes so far.
    pub fn outcomes(&self) -> (&[Applied], &[Skipped]) {
        (&self.applied, &self.skipped)
    }

    /// Emits the transformed program: strict chains (with all edits),
    /// deviation chains, the remaining original rules, and every rule of
    /// other predicates; then removes dead rules.
    pub fn finish(self) -> PushResult {
        let p = self.info.pred;
        let seq = &self.unfolding.seq;
        let k = seq.len();
        let mut rules: Vec<Rule> = Vec::new();

        // Rules of other predicates.
        for r in &self.program.rules {
            if r.head.pred != p {
                rules.push(r.clone());
            }
        }

        // Strict chains.
        for (ci, chain) in self.chains.iter().enumerate() {
            for i in 1..=k {
                let head_pred = if i == 1 {
                    p
                } else {
                    Pred::new(&format!("{}@s{ci}x{}", p.name(), i - 1))
                };
                let next_pred = if i == k {
                    p
                } else {
                    Pred::new(&format!("{}@s{ci}x{i}", p.name()))
                };
                let head = Atom::new(head_pred, self.unfolding.call_args[i - 1].clone());
                let body: Vec<Literal> = chain.steps[i - 1]
                    .iter()
                    .map(|l| match l {
                        Literal::Atom(a) if a.pred == p => {
                            let mut a = a.clone();
                            a.pred = next_pred;
                            Literal::Atom(a)
                        }
                        other => other.clone(),
                    })
                    .collect();
                rules.push(Rule::new(head, body));
            }
        }

        // Deviation structure (only needed for k ≥ 2): trees that match a
        // proper prefix of the sequence and then deviate.
        if k >= 2 {
            let dev_pred = |i: usize| Pred::new(&format!("{}@d{i}", p.name()));
            // Entry: apply r_{j1}, commit to deviating before completing s.
            let entry = self.retarget(&self.program.rules[seq[0]], p, dev_pred(1), 1, 0);
            rules.push(entry);
            for (i, &next) in seq.iter().enumerate().take(k).skip(1) {
                // Escape now: apply any rule ≠ r_{j,i+1}, recursing to p.
                for &l in &self.info.all_rules() {
                    if l == next {
                        continue;
                    }
                    let mut esc = self.retarget(&self.program.rules[l], p, p, i + 1, l);
                    esc.head = Atom::new(dev_pred(i), esc.head.args.clone());
                    rules.push(esc);
                }
                // Continue matching (still committed to deviate later).
                if i + 1 < k {
                    let mut cont =
                        self.retarget(&self.program.rules[next], p, dev_pred(i + 1), i + 1, next);
                    cont.head = Atom::new(dev_pred(i), cont.head.args.clone());
                    rules.push(cont);
                }
            }
        }

        // The original rules other than r_{j1} (immediate deviation).
        for &l in &self.info.all_rules() {
            if l != seq[0] {
                rules.push(self.program.rules[l].clone());
            }
        }

        let program = Program::new(rules);
        let roots: BTreeSet<Pred> = self.program.idb_preds();
        // IDB-like: anything the original program defines plus every
        // generated auxiliary predicate; everything else may hold EDB facts.
        let mut idb_like = roots.clone();
        idb_like.extend(program.idb_preds());
        let program = remove_dead_rules(&program, &roots, &idb_like);
        PushResult {
            program,
            applied: self.applied,
            skipped: self.skipped,
        }
    }

    /// A copy of `rule` with locals freshened (tagged by `(level, tag)`)
    /// and the recursive subgoal retargeted.
    fn retarget(&self, rule: &Rule, p: Pred, target: Pred, level: usize, tag: usize) -> Rule {
        let mut sigma = Subst::new();
        for v in rule.local_vars() {
            sigma.insert(v, Term::Var(Symbol::intern(&format!("{v}~v{level}t{tag}"))));
        }
        let body = rule
            .body
            .iter()
            .map(|l| match l {
                Literal::Atom(a) if a.pred == p => {
                    let mut a = sigma.apply_atom(a);
                    a.pred = target;
                    Literal::Atom(a)
                }
                other => sigma.apply_literal(other),
            })
            .collect();
        Rule::new(sigma.apply_atom(&rule.head), body)
    }
}

/// The result of a pushing session.
#[derive(Clone, Debug)]
pub struct PushResult {
    /// The transformed, cleaned program.
    pub program: Program,
    /// Successfully pushed residues.
    pub applied: Vec<Applied>,
    /// Residues that could not be pushed.
    pub skipped: Vec<Skipped>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{detect, DetectionMethod};
    use crate::sequence::unfold;
    use semrec_datalog::analysis::{classify_linear_pred, rectify};
    use semrec_datalog::parser::parse_unit;
    use semrec_engine::{evaluate, Database, Strategy};

    fn setup(src: &str, pred: &str) -> (Program, RecursionInfo, Vec<semrec_datalog::Constraint>) {
        let unit = parse_unit(src).unwrap();
        let (p, _) = rectify(&unit.program());
        let info = classify_linear_pred(&p, Pred::new(pred)).unwrap();
        (p, info, unit.constraints)
    }

    /// Example 4.3: conditional pruning on the genealogy program.
    #[test]
    fn pruning_example_4_3() {
        let (p, info, ics) = setup(
            "anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).
             anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za), par(Z, Za, Y, Ya).
             ic: Ya <= 50, par(Z, Za, Y, Ya), par(Z1, Z1a, Z, Za), par(Z2, Z2a, Z1, Z1a) -> .",
            "anc",
        );
        let ds = detect(&p, &info, &ics[0], DetectionMethod::SdGraph, 1).unwrap();
        let d = ds
            .iter()
            .find(|d| d.residue.is_null() && d.residue.seq == vec![1, 1, 1])
            .unwrap();
        let u = unfold(&p, &info, &d.residue.seq).unwrap();
        let mut pusher = Pusher::new(&p, &info, &u);
        pusher.push(&d.residue, &PushPolicy::default());
        let res = pusher.finish();
        assert_eq!(res.applied.len(), 1);
        assert_eq!(res.applied[0].kind, OptKind::SubtreePruning);
        // The optimized strict chain is gone; a complement chain with the
        // negated condition remains.
        let has_negated = res
            .program
            .rules
            .iter()
            .any(|r| r.body_cmps().any(|c| c.to_string() == "Ya > 50"));
        assert!(has_negated, "program:\n{}", res.program);
    }

    /// Equivalence of the pushed program on an IC-satisfying database.
    #[test]
    fn pruning_preserves_semantics_on_consistent_db() {
        let (p, info, ics) = setup(
            "anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).
             anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za), par(Z, Za, Y, Ya).
             ic: Ya <= 50, par(Z, Za, Y, Ya), par(Z1, Z1a, Z, Za), par(Z2, Z2a, Z1, Z1a) -> .",
            "anc",
        );
        let ds = detect(&p, &info, &ics[0], DetectionMethod::SdGraph, 1).unwrap();
        let d = ds
            .iter()
            .find(|d| d.residue.is_null() && d.residue.seq == vec![1, 1, 1])
            .unwrap();
        let u = unfold(&p, &info, &d.residue.seq).unwrap();
        let mut pusher = Pusher::new(&p, &info, &u);
        pusher.push(&d.residue, &PushPolicy::default());
        let res = pusher.finish();

        // Three generations, ages decreasing by 30 per generation; the
        // 3-generation IC holds (ancestors of the young have age > 50).
        let mut db = Database::new();
        let mut fact = |child: i64, ca: i64, par: i64, pa: i64| {
            db.insert(
                "par",
                vec![
                    semrec_datalog::Value::Int(child),
                    semrec_datalog::Value::Int(ca),
                    semrec_datalog::Value::Int(par),
                    semrec_datalog::Value::Int(pa),
                ],
            );
        };
        fact(1, 20, 2, 45);
        fact(2, 45, 3, 75);
        fact(3, 75, 4, 105);
        fact(5, 25, 2, 45);
        for ic in &ics {
            assert!(db.satisfies(ic));
        }
        let base = evaluate(&db, &p, Strategy::SemiNaive).unwrap();
        let opt = evaluate(&db, &res.program, Strategy::SemiNaive).unwrap();
        assert_eq!(
            base.relation("anc").unwrap().sorted_tuples(),
            opt.relation("anc").unwrap().sorted_tuples()
        );
    }

    /// Example 3.2/4.2: unconditional elimination of the expert atom.
    #[test]
    fn elimination_example_3_2() {
        let (p, info, ics) = setup(
            "eval(P, S, T) :- super(P, S, T).
             eval(P, S, T) :- works_with(P, P1), eval(P1, S, T), expert(P, F), field(T, F).
             ic: works_with(P2, P1), expert(P1, F1) -> expert(P2, F1).",
            "eval",
        );
        let ds = detect(&p, &info, &ics[0], DetectionMethod::SdGraph, 1).unwrap();
        let d = ds
            .iter()
            .find(|d| d.residue.is_useful() && d.residue.seq == vec![1, 1])
            .unwrap();
        let u = unfold(&p, &info, &d.residue.seq).unwrap();
        let mut pusher = Pusher::new(&p, &info, &u);
        pusher.push(&d.residue, &PushPolicy::default());
        let res = pusher.finish();
        assert_eq!(res.applied.len(), 1);
        assert_eq!(res.applied[0].kind, OptKind::AtomElimination);
        // The strict chain's level-1 rule lost its expert atom: count the
        // expert atoms across eval-rules — original had 1 per recursive
        // rule copy, the optimized strict chain drops one.
        let strict_level1 = res
            .program
            .rules
            .iter()
            .find(|r| {
                r.head.pred == Pred::new("eval")
                    && r.body_atoms().any(|a| a.pred.name().contains("@s0x1"))
            })
            .expect("strict chain entry");
        assert!(
            !strict_level1
                .body_atoms()
                .any(|a| a.pred == Pred::new("expert")),
            "expert not eliminated: {strict_level1}"
        );
    }

    /// Elimination must preserve semantics on a works_with/expert-closed DB.
    #[test]
    fn elimination_preserves_semantics_on_consistent_db() {
        let (p, info, ics) = setup(
            "eval(P, S, T) :- super(P, S, T).
             eval(P, S, T) :- works_with(P, P1), eval(P1, S, T), expert(P, F), field(T, F).
             ic: works_with(P2, P1), expert(P1, F1) -> expert(P2, F1).",
            "eval",
        );
        let ds = detect(&p, &info, &ics[0], DetectionMethod::SdGraph, 1).unwrap();
        let d = ds
            .iter()
            .find(|d| d.residue.is_useful() && d.residue.seq == vec![1, 1])
            .unwrap();
        let u = unfold(&p, &info, &d.residue.seq).unwrap();
        let mut pusher = Pusher::new(&p, &info, &u);
        pusher.push(&d.residue, &PushPolicy::default());
        let res = pusher.finish();

        let v = semrec_datalog::Value::str;
        let mut db = Database::new();
        // works_with chain p0 -> p1 -> p2; expert closed under the IC.
        db.insert("works_with", vec![v("p0"), v("p1")]);
        db.insert("works_with", vec![v("p1"), v("p2")]);
        db.insert("expert", vec![v("p2"), v("db")]);
        db.insert("expert", vec![v("p1"), v("db")]);
        db.insert("expert", vec![v("p0"), v("db")]);
        db.insert("expert", vec![v("p1"), v("ai")]);
        db.insert("expert", vec![v("p0"), v("ai")]);
        db.insert("field", vec![v("thesis1"), v("db")]);
        db.insert("field", vec![v("thesis2"), v("ai")]);
        db.insert("super", vec![v("p2"), v("s1"), v("thesis1")]);
        db.insert("super", vec![v("p1"), v("s2"), v("thesis2")]);
        for ic in &ics {
            assert!(db.satisfies(ic));
        }
        let base = evaluate(&db, &p, Strategy::SemiNaive).unwrap();
        let opt = evaluate(&db, &res.program, Strategy::SemiNaive).unwrap();
        assert_eq!(
            base.relation("eval").unwrap().sorted_tuples(),
            opt.relation("eval").unwrap().sorted_tuples()
        );
    }

    /// Example 4.2's conditional introduction of doctoral(S).
    #[test]
    fn introduction_of_small_relation() {
        let (p, info, ics) = setup(
            "es(P, S, T, M) :- base_es(P, S, T, M).
             es(P, S, T, M) :- link(P, P1), es(P1, S, T, M), pays(M, G, S, T).
             ic: pays(M, G, S, T), M > 10000 -> doctoral(S).",
            "es",
        );
        let ds = detect(&p, &info, &ics[0], DetectionMethod::SdGraph, 1).unwrap();
        let d = ds
            .iter()
            .find(|d| d.residue.is_fact() && d.residue.is_conditional())
            .expect("conditional fact residue");
        let u = unfold(&p, &info, &d.residue.seq).unwrap();
        let mut pusher = Pusher::new(&p, &info, &u);
        let mut policy = PushPolicy::default();
        policy.small_relations.insert(Pred::new("doctoral"));
        pusher.push(&d.residue, &policy);
        let res = pusher.finish();
        assert_eq!(res.applied.len(), 1, "skipped: {:?}", res.skipped);
        assert_eq!(res.applied[0].kind, OptKind::AtomIntroduction);
        assert!(res
            .program
            .rules
            .iter()
            .any(|r| r.body_atoms().any(|a| a.pred == Pred::new("doctoral"))));
        // And a complement rule with the negated condition exists.
        assert!(res
            .program
            .rules
            .iter()
            .any(|r| r.body_cmps().any(|c| c.to_string() == "M <= 10000")));
    }

    /// Without the small-relation whitelist the introduction is skipped.
    #[test]
    fn introduction_requires_whitelist() {
        let (p, info, ics) = setup(
            "es(P, S, T, M) :- base_es(P, S, T, M).
             es(P, S, T, M) :- link(P, P1), es(P1, S, T, M), pays(M, G, S, T).
             ic: pays(M, G, S, T), M > 10000 -> doctoral(S).",
            "es",
        );
        let ds = detect(&p, &info, &ics[0], DetectionMethod::SdGraph, 1).unwrap();
        let d = ds
            .iter()
            .find(|d| d.residue.is_fact() && d.residue.is_conditional())
            .unwrap();
        let u = unfold(&p, &info, &d.residue.seq).unwrap();
        let mut pusher = Pusher::new(&p, &info, &u);
        pusher.push(&d.residue, &PushPolicy::default());
        let res = pusher.finish();
        assert!(res.applied.is_empty());
        assert_eq!(res.skipped[0].reason, SkipReason::NotUsefulNotSmall);
    }
}

#[cfg(test)]
mod skip_path_tests {
    use super::*;
    use crate::detect::{detect, DetectionMethod};
    use crate::sequence::unfold;
    use semrec_datalog::analysis::{classify_linear_pred, rectify};
    use semrec_datalog::parser::parse_unit;

    fn setup(src: &str, pred: &str) -> (Program, RecursionInfo, Vec<semrec_datalog::Constraint>) {
        let unit = parse_unit(src).unwrap();
        let (p, _) = rectify(&unit.program());
        let info = classify_linear_pred(&p, Pred::new(pred)).unwrap();
        (p, info, unit.constraints)
    }

    /// Deleting the atom would unbind an output variable: skipped with
    /// WouldBreakSafety.
    #[test]
    fn elimination_that_breaks_safety_is_skipped() {
        // witness(Z, W) where W is an output of the head: the IC implies
        // *some* witness exists, but the rule exports the specific W.
        let (p, info, ics) = setup(
            "r(X, W) :- base(X, W).
             r(X, W) :- edge(X, Z), witness(Z, W), r(Z, W0), W0 = W.
             ic: edge(X, Z) -> witness(Z, V).",
            "r",
        );
        let ds = detect(&p, &info, &ics[0], DetectionMethod::SdGraph, 1).unwrap();
        // If any residue is useful it must fail the safety check.
        for d in ds.iter().filter(|d| d.residue.is_useful()) {
            let u = unfold(&p, &info, &d.residue.seq).unwrap();
            let mut pusher = Pusher::new(&p, &info, &u);
            pusher.push(&d.residue, &PushPolicy::default());
            let res = pusher.finish();
            assert!(res.applied.is_empty());
            assert!(res
                .skipped
                .iter()
                .all(|s| s.reason == SkipReason::WouldBreakSafety
                    || s.reason == SkipReason::NotUsefulNotSmall));
        }
    }

    /// Policy flags disable each optimization kind.
    #[test]
    fn disabled_policies_skip() {
        let (p, info, ics) = setup(
            "anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).
             anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za), par(Z, Za, Y, Ya).
             ic: Ya <= 50, par(Z, Za, Y, Ya), par(Z1, Z1a, Z, Za), par(Z2, Z2a, Z1, Z1a) -> .",
            "anc",
        );
        let ds = detect(&p, &info, &ics[0], DetectionMethod::SdGraph, 1).unwrap();
        let d = ds.iter().find(|d| d.residue.is_null()).unwrap();
        let u = unfold(&p, &info, &d.residue.seq).unwrap();
        let mut pusher = Pusher::new(&p, &info, &u);
        let policy = PushPolicy {
            pruning: false,
            ..PushPolicy::default()
        };
        pusher.push(&d.residue, &policy);
        let res = pusher.finish();
        assert!(res.applied.is_empty());
        assert_eq!(res.skipped[0].reason, SkipReason::Disabled);
    }

    /// Pushing the same residue twice: the second application reports
    /// AlreadyEliminated.
    #[test]
    fn double_elimination_reports_already_eliminated() {
        let (p, info, ics) = setup(
            "reach(X, Y) :- edge(X, Y).
             reach(X, Y) :- edge(X, Z), witness(Z, W), reach(Z, Y).
             ic: edge(X, Z) -> witness(Z, W).",
            "reach",
        );
        let ds = detect(&p, &info, &ics[0], DetectionMethod::SdGraph, 1).unwrap();
        let d = ds
            .iter()
            .find(|d| d.residue.is_useful() && d.residue.seq == vec![1])
            .unwrap();
        let u = unfold(&p, &info, &d.residue.seq).unwrap();
        let mut pusher = Pusher::new(&p, &info, &u);
        pusher.push(&d.residue, &PushPolicy::default());
        pusher.push(&d.residue, &PushPolicy::default());
        let res = pusher.finish();
        assert_eq!(res.applied.len(), 1);
        assert_eq!(res.skipped.len(), 1);
        assert_eq!(res.skipped[0].reason, SkipReason::AlreadyEliminated);
    }

    /// An unconditional null residue removes the committed chain entirely
    /// (the paper's "delete the rule defining p^{k-1}" case).
    #[test]
    fn unconditional_pruning_removes_the_chain() {
        let (p, info, ics) = setup(
            "t(X, Y) :- base(X, Y).
             t(X, Y) :- a(X, Z), t(Z, Y).
             ic: a(U, V), a(W, U) -> .",
            "t",
        );
        // The IC forbids a-chains of length 2: the 2-level sequence can be
        // pruned unconditionally.
        let ds = detect(&p, &info, &ics[0], DetectionMethod::SdGraph, 1).unwrap();
        let d = ds
            .iter()
            .find(|d| d.residue.is_null() && !d.residue.is_conditional())
            .expect("unconditional null residue");
        assert_eq!(d.residue.seq, vec![1, 1]);
        let u = unfold(&p, &info, &d.residue.seq).unwrap();
        let mut pusher = Pusher::new(&p, &info, &u);
        pusher.push(&d.residue, &PushPolicy::default());
        let res = pusher.finish();
        assert_eq!(res.applied.len(), 1);
        // No strict-chain predicates remain — only deviation structure.
        assert!(res
            .program
            .rules
            .iter()
            .all(|r| !r.head.pred.name().contains("@s")));

        // Semantics on IC-consistent data (no 2-chains): equivalent.
        use semrec_engine::{evaluate, int_tuple, Database, Strategy};
        let mut db = Database::new();
        db.insert("a", int_tuple(&[1, 2]));
        db.insert("a", int_tuple(&[5, 6]));
        db.insert("base", int_tuple(&[2, 9]));
        db.insert("base", int_tuple(&[6, 9]));
        for ic in &ics {
            assert!(db.satisfies(ic));
        }
        let x = evaluate(&db, &p, Strategy::SemiNaive).unwrap();
        let y = evaluate(&db, &res.program, Strategy::SemiNaive).unwrap();
        assert_eq!(
            x.relation("t").unwrap().sorted_tuples(),
            y.relation("t").unwrap().sorted_tuples()
        );
    }
}
