//! The argument/predicate graph (AP-graph, Definition 3.2) and the subgoal
//! dependency graph (SD-graph) derived from it.
//!
//! The AP-graph records how values flow between subgoal argument positions
//! and the recursive predicate's argument positions, within and across
//! recursion levels. The SD-graph summarizes it: an edge `a → b` labelled
//! `(exp, {(i, j), …})` says that in the expansion sequence obtained by
//! applying the rules `exp` below `a`'s rule, argument `i` of `a` is
//! identical to argument `j` of `b`. An edge with an empty `exp` is the
//! *undirected* (same-level) sharing case.
//!
//! Rather than materializing AP-graph vertices explicitly, the SD-graph
//! construction walks the same paths the definition describes: an
//! *entry* step (subgoal argument shares a variable with a recursive-call
//! position, the undirected `(a, p_k)` edges), zero or more *pass-through*
//! steps (a head variable forwarded to a call position, the directed
//! `⟨p_i, p_j⟩` edges), and an *exit* step (a head variable occurring in a
//! subgoal, the directed `⟨p_i, a⟩` edges). Pass-through chains are
//! enumerated up to `max_descents` rule applications, which bounds the
//! simple paths of the AP-graph.

use semrec_datalog::analysis::RecursionInfo;
use semrec_datalog::atom::{Atom, Pred};
use semrec_datalog::program::Program;
use semrec_datalog::symbol::Symbol;
use semrec_datalog::term::Term;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A non-recursive subgoal occurrence in a rule for the recursive predicate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Occ {
    /// Rule index in the program.
    pub rule: usize,
    /// Literal index within the rule body.
    pub lit: usize,
    /// The occurrence's predicate.
    pub pred: Pred,
}

/// An SD-graph edge.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SdEdge {
    /// Index of the source occurrence in [`SdGraph::occs`].
    pub from: usize,
    /// Index of the target occurrence.
    pub to: usize,
    /// The rules applied below `from`'s rule to reach `to`'s level
    /// (empty = same level). The last element, if any, is `to`'s rule.
    pub exp: Vec<usize>,
    /// Shared argument positions: 0-based `(column of from, column of to)`.
    pub pairs: BTreeSet<(usize, usize)>,
}

/// The subgoal dependency graph of a (rectified) linear program.
#[derive(Clone, Debug)]
pub struct SdGraph {
    /// The subgoal occurrences.
    pub occs: Vec<Occ>,
    /// The edges, deterministic order.
    pub edges: Vec<SdEdge>,
}

impl SdGraph {
    /// Occurrence indices with the given predicate.
    pub fn occs_of(&self, pred: Pred) -> Vec<usize> {
        self.occs
            .iter()
            .enumerate()
            .filter(|(_, o)| o.pred == pred)
            .map(|(i, _)| i)
            .collect()
    }

    /// Edges leaving occurrence `from`.
    pub fn edges_from(&self, from: usize) -> impl Iterator<Item = &SdEdge> {
        self.edges.iter().filter(move |e| e.from == from)
    }

    /// True if the program satisfies the paper's distinct-subgoal
    /// assumption: no predicate occurs twice among the subgoals.
    pub fn distinct_subgoals(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.occs.iter().all(|o| seen.insert(o.pred))
    }
}

impl fmt::Display for SdGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.edges {
            let a = &self.occs[e.from];
            let b = &self.occs[e.to];
            let exp: Vec<String> = e.exp.iter().map(|r| format!("r{r}")).collect();
            writeln!(
                f,
                "{}[r{}] -> {}[r{}]  exp=<{}> pairs={:?}",
                a.pred,
                a.rule,
                b.pred,
                b.rule,
                exp.join(" "),
                e.pairs
            )?;
        }
        Ok(())
    }
}

fn atom_of<'p>(program: &'p Program, occ: &Occ) -> &'p Atom {
    program.rules[occ.rule].body[occ.lit]
        .as_atom()
        .expect("occurrence is an atom")
}

/// Builds the SD-graph of the (rectified) program restricted to the rules
/// defining `info.pred`. `max_descents` bounds pass-through chains.
pub fn build_sd_graph(program: &Program, info: &RecursionInfo, max_descents: usize) -> SdGraph {
    let pred = info.pred;
    let rules = info.all_rules();

    // Canonical head variables (identical across rectified rules).
    let head_vars: Vec<Symbol> = program.rules[rules[0]]
        .head
        .args
        .iter()
        .map(|t| t.as_var().expect("rectified head"))
        .collect();
    let n = head_vars.len();

    // Occurrences.
    let mut occs: Vec<Occ> = Vec::new();
    for &r in &rules {
        for (li, lit) in program.rules[r].body.iter().enumerate() {
            if let Some(a) = lit.as_atom() {
                if a.pred != pred {
                    occs.push(Occ {
                        rule: r,
                        lit: li,
                        pred: a.pred,
                    });
                }
            }
        }
    }

    // Recursive-call arguments per recursive rule.
    let mut call_args: BTreeMap<usize, Vec<Term>> = BTreeMap::new();
    for &r in &info.recursive_rules {
        let call = program.rules[r]
            .body_atoms()
            .find(|a| a.pred == pred)
            .expect("recursive rule has a call");
        call_args.insert(r, call.args.clone());
    }

    // Pass-through steps: pos_steps[k] = [(rule, k2)] when rule forwards
    // head variable k to call position k2.
    let mut pos_steps: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (&r, args) in &call_args {
        for (k2, t) in args.iter().enumerate() {
            if let Term::Var(v) = t {
                if let Some(k) = head_vars.iter().position(|h| h == v) {
                    pos_steps[k].push((r, k2));
                }
            }
        }
    }

    // Exit steps: pos_exits[k] = [(occ index, column)] where head var k
    // appears in an occurrence.
    let mut pos_exits: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (oi, occ) in occs.iter().enumerate() {
        for (col, t) in atom_of(program, occ).args.iter().enumerate() {
            if let Term::Var(v) = t {
                if let Some(k) = head_vars.iter().position(|h| h == v) {
                    pos_exits[k].push((oi, col));
                }
            }
        }
    }

    // Accumulate edges keyed by (from, to, exp).
    type EdgeAcc = BTreeMap<(usize, usize, Vec<usize>), BTreeSet<(usize, usize)>>;
    let mut acc: EdgeAcc = BTreeMap::new();

    // Same-level sharing: two occurrences of one rule sharing a variable.
    for (ai, a) in occs.iter().enumerate() {
        for (bi, b) in occs.iter().enumerate() {
            if ai == bi || a.rule != b.rule {
                continue;
            }
            let aa = atom_of(program, a);
            let bb = atom_of(program, b);
            let mut pairs = BTreeSet::new();
            for (i, ta) in aa.args.iter().enumerate() {
                if !ta.is_var() {
                    continue;
                }
                for (j, tb) in bb.args.iter().enumerate() {
                    if ta == tb {
                        pairs.insert((i, j));
                    }
                }
            }
            if !pairs.is_empty() {
                acc.entry((ai, bi, Vec::new())).or_default().extend(pairs);
            }
        }
    }

    // Cross-level sharing: entry → pass-through* → exit.
    for (ai, a) in occs.iter().enumerate() {
        let Some(cargs) = call_args.get(&a.rule) else {
            continue; // occurrences in exit rules cannot descend
        };
        let aa = atom_of(program, a);
        for (i, ta) in aa.args.iter().enumerate() {
            let Term::Var(v) = ta else { continue };
            for (k0, ct) in cargs.iter().enumerate() {
                if *ct != Term::Var(*v) {
                    continue;
                }
                // DFS from position k0.
                let mut stack: Vec<(usize, Vec<usize>)> = vec![(k0, Vec::new())];
                while let Some((k, exp)) = stack.pop() {
                    // Exit at this level: choose the rule of the exit
                    // occurrence as the final descent.
                    for &(bi, j) in &pos_exits[k] {
                        let mut full = exp.clone();
                        full.push(occs[bi].rule);
                        acc.entry((ai, bi, full)).or_default().insert((i, j));
                    }
                    if exp.len() + 1 >= max_descents {
                        continue;
                    }
                    for &(r, k2) in &pos_steps[k] {
                        let mut e2 = exp.clone();
                        e2.push(r);
                        stack.push((k2, e2));
                    }
                }
            }
        }
    }

    let edges = acc
        .into_iter()
        .map(|((from, to, exp), pairs)| SdEdge {
            from,
            to,
            exp,
            pairs,
        })
        .collect();
    SdGraph { occs, edges }
}

/// The pattern graph of an IC (§3): labels between consecutive database
/// atoms. Entry `t` holds the 0-based shared argument-position pairs
/// between `D_t` and `D_{t+1}`.
pub fn pattern_labels(atoms: &[Atom]) -> Vec<BTreeSet<(usize, usize)>> {
    let mut out = Vec::new();
    for w in atoms.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        let mut pairs = BTreeSet::new();
        for (i, ta) in a.args.iter().enumerate() {
            if !ta.is_var() {
                continue;
            }
            for (j, tb) in b.args.iter().enumerate() {
                if ta == tb {
                    pairs.insert((i, j));
                }
            }
        }
        out.push(pairs);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datalog::analysis::{classify_linear_pred, rectify};
    use semrec_datalog::parser::parse_unit;

    fn sd(src: &str, pred: &str) -> (Program, SdGraph) {
        let p = parse_unit(src).unwrap().program();
        let (p, _) = rectify(&p);
        let info = classify_linear_pred(&p, Pred::new(pred)).unwrap();
        let g = build_sd_graph(&p, &info, 8);
        (p, g)
    }

    #[test]
    fn example_3_2_sd_edge() {
        // works_with → expert with exp <r1> and pair (2,1) [1-based in the
        // paper, (1,0) 0-based here].
        let (_, g) = sd(
            "eval(P, S, T) :- super(P, S, T).
             eval(P, S, T) :- works_with(P, P1), eval(P1, S, T), expert(P, F), field(T, F).",
            "eval",
        );
        assert!(g.distinct_subgoals());
        let ww = g.occs_of(Pred::new("works_with"))[0];
        let ex = g.occs_of(Pred::new("expert"))[0];
        let edge = g
            .edges_from(ww)
            .find(|e| e.to == ex && e.exp == vec![1])
            .expect("works_with -> expert edge");
        assert!(edge.pairs.contains(&(1, 0)));
    }

    #[test]
    fn same_level_edges() {
        let (_, g) = sd(
            "eval(P, S, T) :- super(P, S, T).
             eval(P, S, T) :- works_with(P, P1), eval(P1, S, T), expert(P, F), field(T, F).",
            "eval",
        );
        let ex = g.occs_of(Pred::new("expert"))[0];
        let fi = g.occs_of(Pred::new("field"))[0];
        // expert(P, F) and field(T, F) share F at (1, 1).
        let edge = g
            .edges_from(ex)
            .find(|e| e.to == fi && e.exp.is_empty())
            .expect("same-level edge");
        assert!(edge.pairs.contains(&(1, 1)));
    }

    #[test]
    fn chain_program_descent_edges() {
        // Example 2.1/3.1's r0 (primes as W-vars): a's col 1 (X2) is the
        // call's position 1, which next level exposes as a's col 1 …
        let (_, g) = sd(
            "p(X1, X2, X3, X4, X5, X6) :- e(X1, X2, X3, X4, X5, X6).
             p(X1, X2, X3, X4, X5, X6) :- a(X1, X2, X4), b(W2, X3), c(W3, W4, X5),
                 d(W5, X6), p(X1, W2, W3, W4, W5, W6).",
            "p",
        );
        // b(W2, X3): W2 is call position 1 → next level's X2 → appears in
        // a's column 1 (a(X1, X2, X4)): edge b → a, exp <r1>, pair (0, 1).
        let b = g.occs_of(Pred::new("b"))[0];
        let a = g.occs_of(Pred::new("a"))[0];
        let edge = g
            .edges_from(b)
            .find(|e| e.to == a && e.exp == vec![1])
            .expect("b -> a descent edge");
        assert!(edge.pairs.contains(&(0, 1)));
        // c(W3, W4, X5): W3 = call position 2 → next level's X3 → b's col 1:
        // edge c → b with pair (0, 1).
        let c = g.occs_of(Pred::new("c"))[0];
        let edge = g
            .edges_from(c)
            .find(|e| e.to == b && e.exp == vec![1])
            .expect("c -> b descent edge");
        assert!(edge.pairs.contains(&(0, 1)));
    }

    #[test]
    fn pass_through_multi_level() {
        // X passes down position 0 unchanged; mark(X) at any level shares
        // with the level-0 start(X, Y): edges with exp of increasing length.
        let (_, g) = sd(
            "q(X, Y) :- base(X, Y).
             q(X, Y) :- start(X, Y1), q(X, Y1), mark(Y).",
            "q",
        );
        let st = g.occs_of(Pred::new("start"))[0];
        let edges: Vec<_> = g.edges_from(st).collect();
        // start's col 0 (X) enters call position 0, which is passed through
        // r1 indefinitely; bounded by max_descents = 8.
        assert!(edges.iter().any(|e| e.exp.len() >= 2));
    }

    #[test]
    fn pattern_labels_of_chain_ic() {
        let ic = semrec_datalog::parse_constraints(
            "ic: a(V1, V2, V3), b(V2, V4), c(V4, V5, V6) -> d(V6, V7).",
        )
        .unwrap()
        .remove(0);
        let labels = pattern_labels(&ic.body_atoms);
        assert_eq!(labels.len(), 2);
        assert_eq!(labels[0], BTreeSet::from([(1, 0)]));
        assert_eq!(labels[1], BTreeSet::from([(1, 0)]));
    }

    #[test]
    fn duplicate_subgoals_detected() {
        let (_, g) = sd(
            "p(X) :- e(X).
             p(X) :- a(X, Y), a(Y, X2), p(Y), X2 = Y.",
            "p",
        );
        assert!(!g.distinct_subgoals());
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;
    use semrec_datalog::analysis::{classify_linear_pred, rectify};
    use semrec_datalog::parser::parse_unit;

    #[test]
    fn sd_graph_display_is_readable() {
        let p = parse_unit(
            "eval(P, S, T) :- super(P, S, T).
             eval(P, S, T) :- works_with(P, P1), eval(P1, S, T), expert(P, F), field(T, F).",
        )
        .unwrap()
        .program();
        let (p, _) = rectify(&p);
        let info = classify_linear_pred(&p, Pred::new("eval")).unwrap();
        let g = build_sd_graph(&p, &info, 4);
        let text = g.to_string();
        assert!(text.contains("works_with[r1] -> expert[r1]"), "{text}");
        assert!(text.contains("exp=<r1>"));
    }
}
