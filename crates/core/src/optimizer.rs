//! The end-to-end compile-time pipeline: validate → rectify → detect
//! residues (Algorithm 3.1) → choose a sequence per recursive predicate →
//! push (isolate + optimize) → cleanup.

use crate::detect::{detect, Detection, DetectionMethod};
use crate::push::{Applied, PushPolicy, Pusher, Skipped};
use crate::sequence::unfold;
use semrec_datalog::analysis::{rectify, validate};
use semrec_datalog::atom::{Atom, Pred};
use semrec_datalog::constraint::Constraint;
use semrec_datalog::error::Error;
use semrec_datalog::program::Program;
use semrec_datalog::rule::Rule;
use semrec_engine::{AlternativeKind, CostMemo, EdbStats};
use std::collections::BTreeMap;
use std::fmt;

/// Configuration for [`Optimizer`].
#[derive(Clone, Debug)]
pub struct OptimizerConfig {
    /// How to detect residues.
    pub method: DetectionMethod,
    /// Padding depth for the usefulness search (see [`mod@crate::detect`]).
    pub pad: usize,
    /// Pushing policy (enabled optimizations, small relations).
    pub policy: PushPolicy,
    /// Run structural minimization ([`crate::minimize`]) on the optimized
    /// program (removes redundant atoms and subsumed rules).
    pub minimize: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            method: DetectionMethod::SdGraph,
            pad: 3,
            policy: PushPolicy::default(),
            minimize: false,
        }
    }
}

/// The semantic optimizer.
pub struct Optimizer {
    program: Program,
    ics: Vec<Constraint>,
    config: OptimizerConfig,
}

/// The outcome of optimization.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The input program after rectification (the reference semantics).
    pub rectified: Program,
    /// The optimized program, equivalent to `rectified` on every database
    /// satisfying the constraints.
    pub program: Program,
    /// All detected residues, per predicate.
    pub detections: Vec<(Pred, Detection)>,
    /// The sequence chosen for each optimized predicate.
    pub chosen: BTreeMap<Pred, Vec<usize>>,
    /// Successfully pushed residues.
    pub applied: Vec<Applied>,
    /// Residues that were detected but not pushed, with reasons.
    pub skipped: Vec<Skipped>,
    /// Number of rule-level (non-recursive) optimizations applied.
    pub rule_level: usize,
}

impl Plan {
    /// True if at least one optimization was applied.
    pub fn any_applied(&self) -> bool {
        !self.applied.is_empty() || self.rule_level > 0
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "— optimization plan —")?;
        for (p, seq) in &self.chosen {
            writeln!(f, "predicate {p}: isolated sequence {seq:?}")?;
        }
        for a in &self.applied {
            writeln!(f, "applied {}: {} [{}]", a.kind, a.residue, a.note)?;
        }
        for s in &self.skipped {
            writeln!(f, "skipped {}: {}", s.residue, s.reason)?;
        }
        if self.rule_level > 0 {
            writeln!(
                f,
                "applied {} rule-level optimization(s) to non-recursive rules",
                self.rule_level
            )?;
        }
        writeln!(f, "— optimized program —")?;
        write!(f, "{}", self.program)
    }
}

impl Optimizer {
    /// Creates an optimizer for `program` (validated lazily in [`run`]).
    ///
    /// [`run`]: Optimizer::run
    pub fn new(program: &Program) -> Optimizer {
        Optimizer {
            program: program.clone(),
            ics: Vec::new(),
            config: OptimizerConfig::default(),
        }
    }

    /// Adds integrity constraints.
    pub fn with_constraints(mut self, ics: &[Constraint]) -> Self {
        self.ics.extend(ics.iter().cloned());
        self
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: OptimizerConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the pipeline.
    pub fn run(self) -> Result<Plan, Error> {
        #[cfg(feature = "failpoints")]
        semrec_engine::failpoint::hit("optimizer.push").map_err(Error::analysis)?;
        validate(&self.program, &self.ics)?;
        let (rectified, _) = rectify(&self.program);
        let infos = validate(&rectified, &self.ics)?;

        let mut detections: Vec<(Pred, Detection)> = Vec::new();
        for info in &infos {
            for ic in &self.ics {
                for d in detect(&rectified, info, ic, self.config.method, self.config.pad)? {
                    detections.push((info.pred, d));
                }
            }
        }

        // Group detections per predicate and sequence, score, choose.
        let mut applied = Vec::new();
        let mut skipped = Vec::new();
        let mut chosen: BTreeMap<Pred, Vec<usize>> = BTreeMap::new();
        let mut per_pred_rules: BTreeMap<Pred, Vec<Rule>> = BTreeMap::new();

        for info in &infos {
            let mine: Vec<&Detection> = detections
                .iter()
                .filter(|(p, _)| *p == info.pred)
                .map(|(_, d)| d)
                .collect();
            if mine.is_empty() {
                continue;
            }
            let Some(seq) = choose_sequence(&mine, &self.config.policy) else {
                // Nothing pushable: record all as skipped via a dry run on
                // their own sequences.
                for d in mine {
                    let u = unfold(&rectified, info, &d.residue.seq)?;
                    let mut pusher = Pusher::new(&rectified, info, &u);
                    pusher.push(&d.residue, &self.config.policy);
                    let res = pusher.finish();
                    skipped.extend(res.skipped);
                }
                continue;
            };
            let u = unfold(&rectified, info, &seq)?;
            let mut pusher = Pusher::new(&rectified, info, &u);
            for d in &mine {
                if d.residue.seq == seq {
                    pusher.push(&d.residue, &self.config.policy);
                }
            }
            let res = pusher.finish();
            if res.applied.is_empty() {
                skipped.extend(res.skipped);
                continue;
            }
            chosen.insert(info.pred, seq);
            applied.extend(res.applied);
            skipped.extend(res.skipped);
            // Extract this predicate's new rule structure: its own rules
            // plus generated (`@`-named) auxiliaries.
            let rules: Vec<Rule> = res
                .program
                .rules
                .iter()
                .filter(|r| r.head.pred == info.pred || r.head.pred.name().contains('@'))
                .cloned()
                .collect();
            per_pred_rules.insert(info.pred, rules);
        }

        // Merge: untouched rules + per-predicate transformed structures.
        let mut rules: Vec<Rule> = Vec::new();
        for r in &rectified.rules {
            if !per_pred_rules.contains_key(&r.head.pred) {
                rules.push(r.clone());
            }
        }
        for (_, mut pr) in per_pred_rules {
            rules.append(&mut pr);
        }
        let program = Program::new(rules);

        // Non-recursive rules need no isolation: push rule-level residues
        // (the k = 1 case, e.g. Example 4.2's eval_support rule) directly,
        // at compile time.
        let recursive: std::collections::BTreeSet<Pred> = infos.iter().map(|i| i.pred).collect();
        let non_recursive: std::collections::BTreeSet<Pred> = program
            .idb_preds()
            .into_iter()
            .filter(|p| !recursive.contains(p) && !p.name().contains('@'))
            .collect();
        let (program, _, rule_level_applied) = crate::baseline::rule_level_rewrite_with(
            &program,
            &self.ics,
            &self.config.policy,
            Some(&non_recursive),
        );
        let program = if self.config.minimize {
            crate::minimize::minimize_program(&program)
        } else {
            program
        };

        Ok(Plan {
            rectified,
            program,
            detections,
            chosen,
            applied,
            skipped,
            rule_level: rule_level_applied,
        })
    }
}

/// Scores sequences by the optimizations their residues could drive and
/// returns the best one (ties: shorter, then lexicographically smaller).
fn choose_sequence(detections: &[&Detection], policy: &PushPolicy) -> Option<Vec<usize>> {
    let mut scores: BTreeMap<Vec<usize>, i64> = BTreeMap::new();
    for d in detections {
        let r = &d.residue;
        let score = match &r.head {
            crate::residue::ResidueHead::Null => {
                if policy.pruning {
                    3
                } else {
                    0
                }
            }
            crate::residue::ResidueHead::Atom(a) => {
                if r.useful_at.is_some() && policy.elimination {
                    2
                } else if policy.small_relations.contains(&a.pred) && policy.introduction {
                    1
                } else {
                    0
                }
            }
            crate::residue::ResidueHead::Cmp(_) => {
                if policy.introduction {
                    1
                } else {
                    0
                }
            }
        };
        *scores.entry(r.seq.clone()).or_insert(0) += score;
    }
    scores
        .into_iter()
        .filter(|(_, s)| *s > 0)
        .max_by(|(sa, a), (sb, b)| {
            // Shortest sequence first: a residue on a short sequence is
            // more general (it optimizes every unrolling that embeds it)
            // and pays less commitment overhead. Then higher score, then
            // lexicographically larger (prefers all-recursive sequences
            // over exit-closed variants of the same length — they cover
            // arbitrarily deep trees rather than a single depth).
            sb.len().cmp(&sa.len()).then(a.cmp(b)).then(sa.cmp(sb))
        })
        .map(|(seq, _)| seq)
}

/// The outcome of a governed, degradation-aware evaluation: the result
/// (whose [`Route`](semrec_engine::Route) records which program
/// answered) plus, when the optimized route was abandoned, why.
#[derive(Debug)]
pub struct GovernedOutcome {
    /// The answer, from whichever route produced it.
    pub result: semrec_engine::EvalResult,
    /// Why the optimized route did not answer (panic, optimizer error,
    /// or its budget slice running out), when degradation happened.
    pub degraded: Option<String>,
}

/// The rewrite alternatives the cost-based router prices for one query:
/// the program as written, its rectified normal form (when it differs),
/// the residue-pushed program (when the optimizer applied anything), and
/// — when a goal directs evaluation — the magic-sets rewriting. Returns
/// the alternatives plus, when a magic variant was enumerated, the
/// adorned predicate holding the goal's answers.
pub fn route_alternatives(
    program: &Program,
    plan: &Plan,
    goal: Option<&Atom>,
) -> (Vec<(AlternativeKind, Program)>, Option<Pred>) {
    let mut alts = vec![(AlternativeKind::Original, program.clone())];
    if plan.rectified != *program {
        alts.push((AlternativeKind::Rectified, plan.rectified.clone()));
    }
    if plan.any_applied() {
        alts.push((AlternativeKind::ResiduePushed, plan.program.clone()));
    }
    let mut magic_answer = None;
    if let Some(goal) = goal {
        // Magic prices only the goal-relevant subset; an unrewritable
        // program (negation, EDB goal) just isn't enumerated.
        if let Ok(m) = semrec_engine::magic::magic_rewrite(program, goal) {
            magic_answer = Some(m.answer_pred);
            alts.push((AlternativeKind::Magic, m.program));
        }
    }
    (alts, magic_answer)
}

/// Evaluates `program` under `budget` with the paper's semantic
/// optimization — degrading instead of dying. See [`evaluate_routed`];
/// this entry point routes without a goal (so no magic-sets
/// alternative is priced).
pub fn evaluate_governed(
    db: &semrec_engine::Database,
    program: &Program,
    ics: &[Constraint],
    config: OptimizerConfig,
    budget: semrec_engine::Budget,
    cancel: semrec_engine::CancelToken,
    threads: usize,
) -> Result<GovernedOutcome, semrec_engine::EngineError> {
    evaluate_routed(db, program, ics, config, budget, cancel, threads, None)
}

/// The cost-routed, governed evaluation entry point. The optimizer runs
/// first (residue detection → isolation → push); its rewrite
/// alternatives are then priced by the [`CostMemo`] against the
/// database's statistics, and the *cheapest* alternative — not a fixed
/// ladder — runs under a slice of the budget: half the deadline when
/// one is set, so the fallback always has room to answer. If that route
/// panics, fails to compile, or exhausts its slice, the *rectified*
/// program — the reference semantics the optimization must preserve —
/// is evaluated under the remaining budget. Cancellation is honored,
/// never degraded around: a [`EngineError::Cancelled`] from either
/// route is final.
///
/// The planner's verdict rides on the result:
/// [`EvalResult::choice`](semrec_engine::EvalResult) records every
/// priced alternative and the runner-up, and `stats.plan_nanos` the
/// planning wall time. When pricing itself fails, the fixed ladder
/// (optimized-then-rectified) runs unchanged with no choice recorded.
///
/// [`EngineError::Cancelled`]: semrec_engine::EngineError::Cancelled
#[allow(clippy::too_many_arguments)]
pub fn evaluate_routed(
    db: &semrec_engine::Database,
    program: &Program,
    ics: &[Constraint],
    config: OptimizerConfig,
    budget: semrec_engine::Budget,
    cancel: semrec_engine::CancelToken,
    threads: usize,
    goal: Option<&Atom>,
) -> Result<GovernedOutcome, semrec_engine::EngineError> {
    use semrec_engine::{EngineError, Route};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let start = std::time::Instant::now();

    // The chosen route's budget slice: half the deadline; row/byte
    // caps apply whole (they bound the same materialized IDB either way).
    let mut slice = budget;
    if let Some(d) = budget.deadline {
        slice.deadline = Some(d / 2);
    }

    let degraded: String;
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        Optimizer::new(program)
            .with_constraints(ics)
            .with_config(config)
            .run()
    }));
    match attempt {
        Ok(Ok(plan)) => {
            let (alts, magic_answer) = route_alternatives(program, &plan, goal);
            let mut stats = EdbStats::new();
            let (run_program, kind, choice) = match CostMemo::build(db, &mut stats, alts) {
                Ok(memo) => {
                    let best = memo.best();
                    (best.program.clone(), best.kind, Some(memo.choice()))
                }
                // Pricing failed: the fixed ladder (optimized program
                // first) runs exactly as before cost routing existed.
                Err(_) => {
                    let kind = if plan.any_applied() {
                        AlternativeKind::ResiduePushed
                    } else {
                        AlternativeKind::Original
                    };
                    (plan.program.clone(), kind, None)
                }
            };
            match run_under(db, &run_program, slice, cancel.clone(), threads) {
                Ok(mut result) => {
                    result.route = kind.route();
                    if let Some(c) = choice {
                        result.stats.plan_nanos = c.plan_nanos;
                        result.choice = Some(c);
                    }
                    // Magic computes the goal's answers under the adorned
                    // predicate; surface them under the goal's own
                    // predicate so `answers(goal)` works unchanged.
                    if kind == AlternativeKind::Magic {
                        if let (Some(goal), Some(ans)) = (goal, magic_answer) {
                            if let Some(rel) = result.idb.get(&ans).cloned() {
                                result.idb.insert(goal.pred, rel);
                            }
                        }
                    }
                    return Ok(GovernedOutcome {
                        result,
                        degraded: None,
                    });
                }
                Err(EngineError::Cancelled) => return Err(EngineError::Cancelled),
                Err(e) => degraded = format!("{kind} route: {e}"),
            }
        }
        Ok(Err(e)) => degraded = format!("optimizer failed: {e}"),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            degraded = format!("optimizer panicked: {msg}");
        }
    }

    // Fallback: the rectified program under whatever budget remains.
    let mut remaining = budget;
    if let Some(d) = budget.deadline {
        let left = d.saturating_sub(start.elapsed());
        if left.is_zero() {
            return Err(EngineError::DeadlineExceeded {
                elapsed_ms: start.elapsed().as_millis() as u64,
            });
        }
        remaining.deadline = Some(left);
    }
    let (rectified, _) = rectify(program);
    let mut result = run_under(db, &rectified, remaining, cancel, threads)?;
    result.route = Route::RectifiedFallback;
    Ok(GovernedOutcome {
        result,
        degraded: Some(degraded),
    })
}

/// One budgeted evaluation; a control-thread panic (as opposed to a
/// worker panic, which the pool already converts) is caught and
/// surfaced as [`EngineError::WorkerPanicked`] so the degradation
/// policy can treat both alike.
fn run_under(
    db: &semrec_engine::Database,
    program: &Program,
    budget: semrec_engine::Budget,
    cancel: semrec_engine::CancelToken,
    threads: usize,
) -> Result<semrec_engine::EvalResult, semrec_engine::EngineError> {
    use semrec_engine::{EngineError, Evaluator, Strategy};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let run = catch_unwind(AssertUnwindSafe(|| {
        let mut ev = Evaluator::new(db, program, Strategy::SemiNaive)?
            .with_parallelism(threads)
            .with_budget(budget)
            .with_cancel_token(cancel);
        ev.run()?;
        Ok(ev.finish())
    }));
    match run {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            Err(EngineError::WorkerPanicked {
                job: "eval".to_owned(),
                payload: msg,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datalog::parser::parse_unit;
    use semrec_engine::{evaluate, Database, Strategy};

    #[test]
    fn end_to_end_pruning_plan() {
        let unit = parse_unit(
            "anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).
             anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za), par(Z, Za, Y, Ya).
             ic: Ya <= 50, par(Z, Za, Y, Ya), par(Z1, Z1a, Z, Za), par(Z2, Z2a, Z1, Z1a) -> .",
        )
        .unwrap();
        let plan = Optimizer::new(&unit.program())
            .with_constraints(&unit.constraints)
            .run()
            .unwrap();
        assert!(plan.any_applied());
        assert_eq!(plan.chosen[&Pred::new("anc")], vec![1, 1, 1]);
        assert!(plan.to_string().contains("subtree pruning"));
    }

    #[test]
    fn end_to_end_elimination_plan() {
        let unit = parse_unit(
            "eval(P, S, T) :- super(P, S, T).
             eval(P, S, T) :- works_with(P, P1), eval(P1, S, T), expert(P, F), field(T, F).
             ic: works_with(P2, P1), expert(P1, F1) -> expert(P2, F1).",
        )
        .unwrap();
        let plan = Optimizer::new(&unit.program())
            .with_constraints(&unit.constraints)
            .run()
            .unwrap();
        assert!(plan.any_applied());
        assert!(plan
            .applied
            .iter()
            .any(|a| a.kind == crate::push::OptKind::AtomElimination));
    }

    #[test]
    fn no_ics_means_no_change() {
        let unit =
            parse_unit("anc(X, Y) :- par(X, Y). anc(X, Y) :- anc(X, Z), par(Z, Y).").unwrap();
        let plan = Optimizer::new(&unit.program()).run().unwrap();
        assert!(!plan.any_applied());
        assert_eq!(plan.program, plan.rectified);
    }

    #[test]
    fn unrelated_ic_means_no_change() {
        let unit = parse_unit(
            "anc(X, Y) :- par(X, Y). anc(X, Y) :- anc(X, Z), par(Z, Y).
             ic: zig(A, B), zag(B, C) -> .",
        )
        .unwrap();
        let plan = Optimizer::new(&unit.program())
            .with_constraints(&unit.constraints)
            .run()
            .unwrap();
        assert!(!plan.any_applied());
    }

    #[test]
    fn optimized_program_evaluates_equivalently() {
        let unit = parse_unit(
            "anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).
             anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za), par(Z, Za, Y, Ya).
             ic: Ya <= 50, par(Z, Za, Y, Ya), par(Z1, Z1a, Z, Za), par(Z2, Z2a, Z1, Z1a) -> .",
        )
        .unwrap();
        let plan = Optimizer::new(&unit.program())
            .with_constraints(&unit.constraints)
            .run()
            .unwrap();

        // An IC-satisfying chain of generations (ages +30 per generation).
        let mut db = Database::new();
        for g in 0..6i64 {
            db.insert(
                "par",
                vec![
                    semrec_datalog::Value::Int(g),
                    semrec_datalog::Value::Int(20 + g * 30),
                    semrec_datalog::Value::Int(g + 1),
                    semrec_datalog::Value::Int(20 + (g + 1) * 30),
                ],
            );
        }
        for ic in &unit.constraints {
            assert!(db.satisfies(ic));
        }
        let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
        let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
        assert_eq!(
            base.relation("anc").unwrap().sorted_tuples(),
            opt.relation("anc").unwrap().sorted_tuples()
        );
    }

    #[test]
    fn ablation_flags_disable_optimizations() {
        let unit = parse_unit(
            "anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).
             anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za), par(Z, Za, Y, Ya).
             ic: Ya <= 50, par(Z, Za, Y, Ya), par(Z1, Z1a, Z, Za), par(Z2, Z2a, Z1, Z1a) -> .",
        )
        .unwrap();
        let mut config = OptimizerConfig::default();
        config.policy.pruning = false;
        let plan = Optimizer::new(&unit.program())
            .with_constraints(&unit.constraints)
            .with_config(config)
            .run()
            .unwrap();
        assert!(!plan.any_applied());
    }
}

#[cfg(test)]
mod minimize_integration_tests {
    use super::*;
    use semrec_datalog::parser::parse_unit;
    use semrec_engine::{evaluate, int_tuple, Database, Strategy};

    #[test]
    fn minimize_flag_tidies_the_output() {
        // A program with a redundant duplicate atom survives optimization
        // untouched without the flag and loses it with the flag.
        let unit = parse_unit(
            "t(X, Y) :- e(X, Y), e(X, Y).
             t(X, Y) :- e(X, Z), t(Z, Y).",
        )
        .unwrap();
        let plain = Optimizer::new(&unit.program()).run().unwrap();
        let config = OptimizerConfig {
            minimize: true,
            ..OptimizerConfig::default()
        };
        let tidy = Optimizer::new(&unit.program())
            .with_config(config)
            .run()
            .unwrap();
        let atoms = |p: &Program| -> usize { p.rules.iter().map(|r| r.body.len()).sum() };
        assert!(atoms(&tidy.program) < atoms(&plain.program));

        let mut db = Database::new();
        for (a, b) in [(0, 1), (1, 2), (2, 3)] {
            db.insert("e", int_tuple(&[a, b]));
        }
        let x = evaluate(&db, &plain.program, Strategy::SemiNaive).unwrap();
        let y = evaluate(&db, &tidy.program, Strategy::SemiNaive).unwrap();
        assert_eq!(
            x.relation("t").unwrap().sorted_tuples(),
            y.relation("t").unwrap().sorted_tuples()
        );
    }
}
