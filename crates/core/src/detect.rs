//! Residue detection: Algorithm 3.1 (SD-graph pattern matching) and the
//! exhaustive enumeration it replaces.
//!
//! Both methods end in the same verification step: the candidate expansion
//! sequence is unfolded and the IC's database atoms are (freely, totally)
//! subsumed into it, yielding residues via [`crate::residue::build_residue`].
//! The SD-graph method merely *proposes* candidate sequences cheaply —
//! exactly the division of labour of Algorithm 3.1 (Steps 1–3 propose,
//! Step 4 verifies).
//!
//! Detected residues whose head atom is not yet *useful* (§3) are retried
//! on padded sequences (extra rule applications prepended/appended), which
//! is how the paper's Example 3.1 obtains the variant residue `→ d(X5', X6)`
//! — its own expansion uses one more level than the minimal subsumed
//! sequence.

use crate::graph::{build_sd_graph, pattern_labels, SdGraph};
use crate::residue::{build_residue, Residue};
use crate::sequence::{enumerate_sequences, unfold};
use crate::subsume::total_matches;
use semrec_datalog::analysis::RecursionInfo;
use semrec_datalog::atom::Atom;
use semrec_datalog::constraint::Constraint;
use semrec_datalog::error::Error;
use semrec_datalog::program::Program;
use std::collections::BTreeSet;

/// How residues were (or should be) detected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DetectionMethod {
    /// Algorithm 3.1: SD-graph proposal + subsumption verification.
    SdGraph,
    /// Enumerate every expansion sequence up to the given length.
    Exhaustive {
        /// Maximum sequence length.
        max_len: usize,
    },
}

/// A detected residue (the sequence lives in [`Residue::seq`]).
#[derive(Clone, PartialEq, Debug)]
pub struct Detection {
    /// The residue.
    pub residue: Residue,
}

/// Detects residues of `ic` w.r.t. the recursive predicate described by
/// `info`, using the requested method. `program` must be rectified.
///
/// `pad` controls how many extra levels are tried when a fact residue's
/// head atom is not useful on the minimal sequence (both methods).
pub fn detect(
    program: &Program,
    info: &RecursionInfo,
    ic: &Constraint,
    method: DetectionMethod,
    pad: usize,
) -> Result<Vec<Detection>, Error> {
    let seqs: Vec<Vec<usize>> = match method {
        DetectionMethod::Exhaustive { max_len } => enumerate_sequences(info, max_len),
        DetectionMethod::SdGraph => {
            let max_descents = info.arity + 2;
            let graph = build_sd_graph(program, info, max_descents);
            propose_sequences(&graph, info, ic)
        }
    };

    let mut out: Vec<Detection> = Vec::new();
    let mut verified: BTreeSet<Vec<usize>> = BTreeSet::new();
    let mut worklist: Vec<(Vec<usize>, usize)> = seqs.into_iter().map(|s| (s, 0)).collect();

    while let Some((seq, depth)) = worklist.pop() {
        if !verified.insert(seq.clone()) {
            continue;
        }
        let residues = verify_sequence(program, info, ic, &seq)?;
        let mut any_non_useful = false;
        for r in residues {
            // Non-useful fact residues are kept: they cannot drive atom
            // elimination, but they can still drive atom *introduction*
            // (Example 4.2's doctoral(S)). They also trigger a search for a
            // useful variant on a padded sequence (Example 3.1).
            if !r.is_useful() {
                any_non_useful = true;
            }
            let d = Detection { residue: r };
            if !out.contains(&d) {
                out.push(d);
            }
        }
        // Retry longer sequences to look for useful variants (Example 3.1).
        if any_non_useful && depth < pad {
            for &r in &info.recursive_rules {
                let mut pre = vec![r];
                pre.extend(&seq);
                worklist.push((pre, depth + 1));
                // Appending is only possible when the sequence does not end
                // in an exit rule.
                if let Some(&last) = seq.last() {
                    if info.recursive_rules.contains(&last) {
                        let mut post = seq.clone();
                        post.push(r);
                        worklist.push((post, depth + 1));
                    }
                }
            }
        }
    }
    // Deterministic order: by sequence then body position.
    out.sort_by(|a, b| {
        (a.residue.seq.clone(), format!("{}", a.residue))
            .cmp(&(b.residue.seq.clone(), format!("{}", b.residue)))
    });
    Ok(out)
}

/// Step 4 of Algorithm 3.1: unfold the sequence and test maximal (total)
/// free subsumption, generating residues.
pub fn verify_sequence(
    program: &Program,
    info: &RecursionInfo,
    ic: &Constraint,
    seq: &[usize],
) -> Result<Vec<Residue>, Error> {
    let u = unfold(program, info, seq)?;
    let targets: Vec<&Atom> = u.body_atoms().map(|(_, a)| a).collect();
    let mut out: Vec<Residue> = Vec::new();
    for m in total_matches(&ic.body_atoms, &targets) {
        if let Some(r) = build_residue(ic, &u, &m) {
            if !out.contains(&r) {
                out.push(r);
            }
        }
    }
    Ok(out)
}

/// Steps 1–3 of Algorithm 3.1: match the IC's pattern graph against the
/// SD-graph (in both orientations) and read candidate expansion sequences
/// off the matched paths.
fn propose_sequences(graph: &SdGraph, _info: &RecursionInfo, ic: &Constraint) -> Vec<Vec<usize>> {
    let mut out: BTreeSet<Vec<usize>> = BTreeSet::new();
    for atoms in [
        ic.body_atoms.clone(),
        ic.body_atoms.iter().rev().cloned().collect::<Vec<_>>(),
    ] {
        let labels = pattern_labels(&atoms);
        for start in graph.occs_of(atoms[0].pred) {
            let mut path_exp: Vec<usize> = vec![graph.occs[start].rule];
            walk(graph, &atoms, &labels, 0, start, &mut path_exp, &mut out);
        }
    }
    out.into_iter().collect()
}

#[allow(clippy::too_many_arguments)]
fn walk(
    graph: &SdGraph,
    atoms: &[Atom],
    labels: &[BTreeSet<(usize, usize)>],
    t: usize,
    occ: usize,
    seq: &mut Vec<usize>,
    out: &mut BTreeSet<Vec<usize>>,
) {
    if t + 1 == atoms.len() {
        // Completed path; the accumulated sequence is a candidate. It is
        // valid only if every rule except possibly the last is recursive
        // (guaranteed by construction) — emit it.
        out.insert(seq.clone());
        return;
    }
    let next_pred = atoms[t + 1].pred;
    for e in graph.edges_from(occ) {
        if graph.occs[e.to].pred != next_pred {
            continue;
        }
        // Lemma 3.1 condition (ii): the pattern label must be a subset of
        // the edge's sharing label. An empty pattern label cannot happen
        // (chain ICs share ≥1 variable between neighbours).
        if !labels[t].is_subset(&e.pairs) {
            continue;
        }
        if e.exp.is_empty() {
            // Same level: rule must agree with the current level's rule.
            if graph.occs[e.to].rule != *seq.last().expect("nonempty seq") {
                continue;
            }
            walk(graph, atoms, labels, t + 1, e.to, seq, out);
        } else {
            // Descend: the previous level's rule must be where we are now.
            if graph.occs[occ].rule != *seq.last().expect("nonempty seq") {
                continue;
            }
            let len_before = seq.len();
            seq.extend(&e.exp);
            walk(graph, atoms, labels, t + 1, e.to, seq, out);
            seq.truncate(len_before);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datalog::analysis::{classify_linear_pred, rectify};
    use semrec_datalog::atom::Pred;
    use semrec_datalog::parser::parse_unit;

    fn setup(src: &str, pred: &str) -> (Program, RecursionInfo, Vec<Constraint>) {
        let unit = parse_unit(src).unwrap();
        let (p, _) = rectify(&unit.program());
        let info = classify_linear_pred(&p, Pred::new(pred)).unwrap();
        (p, info, unit.constraints)
    }

    const EVAL: &str = "eval(P, S, T) :- super(P, S, T).
        eval(P, S, T) :- works_with(P, P1), eval(P1, S, T), expert(P, F), field(T, F).
        ic ic1: works_with(P2, P1), expert(P1, F1) -> expert(P2, F1).";

    #[test]
    fn example_3_2_detection_via_sdgraph() {
        let (p, info, ics) = setup(EVAL, "eval");
        let ds = detect(&p, &info, &ics[0], DetectionMethod::SdGraph, 2).unwrap();
        assert!(!ds.is_empty());
        // Sequence r1 r1, unconditional useful fact residue -> expert(…).
        let r = ds
            .iter()
            .map(|d| &d.residue)
            .find(|r| r.is_useful() && r.seq == vec![1, 1])
            .expect("useful residue on r1 r1");
        assert!(r.is_fact());
        assert!(!r.is_conditional());
    }

    #[test]
    fn sdgraph_agrees_with_exhaustive() {
        let (p, info, ics) = setup(EVAL, "eval");
        let sd = detect(&p, &info, &ics[0], DetectionMethod::SdGraph, 2).unwrap();
        let ex = detect(
            &p,
            &info,
            &ics[0],
            DetectionMethod::Exhaustive { max_len: 3 },
            2,
        )
        .unwrap();
        // Every SD-detected residue must also be found exhaustively.
        for d in &sd {
            assert!(
                ex.iter().any(|e| e.residue.seq == d.residue.seq
                    && e.residue.head == d.residue.head
                    && e.residue.body == d.residue.body),
                "missing {:?}",
                d.residue.to_string()
            );
        }
    }

    const ANC_AGE: &str = "anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).
        anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za), par(Z, Za, Y, Ya).
        ic: Ya <= 50, par(Z, Za, Y, Ya), par(Z1, Z1a, Z, Za), par(Z2, Z2a, Z1, Z1a) -> .";

    #[test]
    fn example_4_3_pruning_detection() {
        let (p, info, ics) = setup(ANC_AGE, "anc");
        let ds = detect(&p, &info, &ics[0], DetectionMethod::SdGraph, 2).unwrap();
        let null: Vec<&Detection> = ds.iter().filter(|d| d.residue.is_null()).collect();
        assert!(!null.is_empty(), "no null residue found: {ds:?}");
        // The paper's sequence r1 r1 r1; the variant closed by the exit
        // rule (r1 r1 r0 — three par atoms across two recursive levels plus
        // the base case) is also legitimately detected.
        assert!(null.iter().any(|d| d.residue.seq == vec![1, 1, 1]));
        assert!(null.iter().all(|d| d.residue.is_conditional()));
    }

    const CHAIN: &str = "p(X1, X2, X3, X4, X5, X6) :- e(X1, X2, X3, X4, X5, X6).
        p(X1, X2, X3, X4, X5, X6) :- a(X1, X2, X4), b(W2, X3), c(W3, W4, X5),
            d(W5, X6), p(X1, W2, W3, W4, W5, W6).
        ic: a(V1, V2, V3), b(V2, V4), c(V4, V5, V6) -> d(V6, V7).";

    #[test]
    fn example_3_1_useful_residue_needs_padding() {
        let (p, info, ics) = setup(CHAIN, "p");
        let ds = detect(&p, &info, &ics[0], DetectionMethod::SdGraph, 2).unwrap();
        let useful: Vec<&Detection> = ds
            .iter()
            .filter(|d| d.residue.is_useful() && d.residue.is_fact())
            .collect();
        assert!(!useful.is_empty(), "no useful residue: {ds:?}");
        // The minimal maximally-subsumed sequence is r0 r0 r0. The paper
        // claims a useful variant at 4 levels by extending V7 ↦ X6 — but X6
        // is the root output variable, so eliminating d(X5', X6) there
        // would be unsound (the IC only guarantees ∃V7). The first *sound*
        // useful variant sits at 5 levels, where the d atom's second
        // argument is a pure existential; padding finds it.
        assert!(useful.iter().any(|d| d.residue.seq == vec![1; 5]));
        assert!(!ds
            .iter()
            .any(|d| d.residue.is_useful() && d.residue.seq.len() <= 4));
    }

    #[test]
    fn exhaustive_also_finds_chain_residue() {
        let (p, info, ics) = setup(CHAIN, "p");
        let ds = detect(
            &p,
            &info,
            &ics[0],
            DetectionMethod::Exhaustive { max_len: 5 },
            0,
        )
        .unwrap();
        assert!(ds
            .iter()
            .any(|d| d.residue.is_useful() && d.residue.seq.len() == 5));
    }

    #[test]
    fn no_detection_for_unrelated_ic() {
        let (p, info, _) = setup(EVAL, "eval");
        let ic = semrec_datalog::parse_constraints("ic: zig(A, B), zag(B, C) -> .")
            .unwrap()
            .remove(0);
        let ds = detect(&p, &info, &ic, DetectionMethod::SdGraph, 1).unwrap();
        assert!(ds.is_empty());
    }

    #[test]
    fn rule_level_detection_single_rule_sequence() {
        // An IC fully inside one rule body → sequence of length 1.
        let (p, info, ics) = setup(
            "t(E1, E2, E3) :- same_level(E1, E2, E3).
             t(E1, E2, E3) :- boss(U, E3, R), experienced(U), t(U, E1, E2).
             ic: boss(U, E, R), experienced(U) -> strong(E).",
            "t",
        );
        let ds = detect(&p, &info, &ics[0], DetectionMethod::SdGraph, 0).unwrap();
        assert!(ds.iter().any(|d| d.residue.seq == vec![1]));
    }
}

#[cfg(test)]
mod duplicate_subgoal_tests {
    use super::*;
    use semrec_datalog::analysis::{classify_linear_pred, rectify};
    use semrec_datalog::atom::Pred;
    use semrec_datalog::parser::parse_unit;

    /// The paper assumes all subgoal occurrences are distinct predicates;
    /// our occurrence-keyed SD-graph handles repeats, and must agree with
    /// exhaustive enumeration.
    #[test]
    fn repeated_predicates_in_one_rule() {
        let unit = parse_unit(
            "hops(X, Y) :- base(X, Y).
             hops(X, Y) :- step(X, M), step(M, Z), hops(Z, Y).
             ic: step(A, B), step(B, C) -> far(A, C).",
        )
        .unwrap();
        let (p, _) = rectify(&unit.program());
        let info = classify_linear_pred(&p, Pred::new("hops")).unwrap();
        let g = crate::graph::build_sd_graph(&p, &info, 6);
        assert!(!g.distinct_subgoals());

        let sd = detect(&p, &info, &unit.constraints[0], DetectionMethod::SdGraph, 1).unwrap();
        let ex = detect(
            &p,
            &info,
            &unit.constraints[0],
            DetectionMethod::Exhaustive { max_len: 3 },
            1,
        )
        .unwrap();
        // The same-rule match (both step atoms inside one level) must be
        // found by both methods.
        assert!(sd.iter().any(|d| d.residue.seq == vec![1]), "sd: {sd:?}");
        assert!(ex.iter().any(|d| d.residue.seq == vec![1]));
        // And every SD residue with a small sequence appears exhaustively.
        for d in &sd {
            if d.residue.seq.len() <= 3 {
                assert!(
                    ex.iter().any(|e| e.residue.seq == d.residue.seq
                        && e.residue.head == d.residue.head),
                    "missing {:?}",
                    d.residue.seq
                );
            }
        }
    }

    /// Cross-level sharing through a repeated predicate: the IC chain can
    /// match one occurrence at one level and the other a level below.
    #[test]
    fn repeated_predicate_across_levels() {
        let unit = parse_unit(
            "walk(X, Y) :- base(X, Y).
             walk(X, Y) :- road(X, Z), walk(Z, Y).
             ic: road(A, B), road(B, C) -> shortcut(A, C).",
        )
        .unwrap();
        let (p, _) = rectify(&unit.program());
        let info = classify_linear_pred(&p, Pred::new("walk")).unwrap();
        let ds = detect(&p, &info, &unit.constraints[0], DetectionMethod::SdGraph, 1).unwrap();
        // road@level1 and road@level2 chain via the recursion variable.
        assert!(
            ds.iter().any(|d| d.residue.seq == vec![1, 1]),
            "detections: {ds:?}"
        );
    }
}
