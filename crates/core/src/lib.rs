//! # semrec-core
//!
//! The paper's contribution: semantic optimization of linear recursive
//! Datalog programs by computing *free residues* of integrity constraints
//! w.r.t. expansion sequences (§2–§3, Algorithm 3.1) and *pushing* them
//! inside the recursion by program transformation (§4, Algorithm 4.1 +
//! atom elimination / atom introduction / subtree pruning).
//!
//! Entry point: [`optimizer::Optimizer`].

#![warn(missing_docs)]

pub mod baseline;
pub mod cleanup;
pub mod detect;
pub mod expand;
pub mod graph;
pub mod hom;
pub mod isolate;
pub mod maintain;
pub mod minimize;
pub mod optimizer;
pub mod push;
pub mod residue;
pub mod sequence;
pub mod subsume;

pub use detect::{detect, Detection, DetectionMethod};
pub use maintain::{MaintainError, MaintainedQuery, UpdateOutcome};
pub use optimizer::{
    evaluate_governed, evaluate_routed, route_alternatives, GovernedOutcome, Optimizer,
    OptimizerConfig, Plan,
};
pub use residue::{Residue, ResidueHead};
pub use sequence::{unfold, Unfolding};
