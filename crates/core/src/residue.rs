//! Residues of integrity constraints w.r.t. expansion sequences, their
//! classification (Definition 4.1) and usefulness (§3).

use crate::hom::{bind, extend_hom};
use crate::sequence::Unfolding;
use crate::subsume::Match;
use semrec_datalog::atom::Atom;
use semrec_datalog::constraint::{Constraint, IcHead};
use semrec_datalog::literal::Cmp;
use semrec_datalog::subst::Subst;
use semrec_datalog::symbol::Symbol;
use semrec_datalog::term::Term;
use std::collections::BTreeSet;
use std::fmt;

/// The consequent of a residue.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ResidueHead {
    /// `E1, …, Em → ⊥` (null residue: the sequence yields nothing when the
    /// body holds).
    Null,
    /// A database atom.
    Atom(Atom),
    /// An evaluable comparison.
    Cmp(Cmp),
}

impl fmt::Display for ResidueHead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResidueHead::Null => write!(f, "false"),
            ResidueHead::Atom(a) => write!(f, "{a}"),
            ResidueHead::Cmp(c) => write!(f, "{c}"),
        }
    }
}

/// Where a residue's head atom occurs inside the unfolding, making the
/// residue *useful* for its sequence (§3): the atom can then be eliminated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UsefulAt {
    /// Index into [`Unfolding::body`].
    pub body_index: usize,
    /// The 1-based step (level) of that literal.
    pub step: usize,
}

/// A free residue of an IC w.r.t. an expansion sequence. Free maximal
/// subsumption guarantees the body contains only evaluable atoms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Residue {
    /// The source constraint.
    pub ic: Constraint,
    /// The expansion sequence the residue is attached to.
    pub seq: Vec<usize>,
    /// The instantiated evaluable conditions (`E1, …, Em`).
    pub body: Vec<Cmp>,
    /// The instantiated consequent.
    pub head: ResidueHead,
    /// The subsuming substitution (possibly extended by the usefulness
    /// match).
    pub theta: Subst,
    /// Indices (into the unfolding body) of the atoms the IC's database
    /// atoms were matched onto. An elimination may never target these: the
    /// constraint's premises must survive the deletion.
    pub matched_body: Vec<usize>,
    /// Where the head atom occurs in the unfolding, if it does.
    pub useful_at: Option<UsefulAt>,
}

impl Residue {
    /// Fact residue: the head is present (Definition 4.1).
    pub fn is_fact(&self) -> bool {
        !matches!(self.head, ResidueHead::Null)
    }

    /// Null residue: absent head.
    pub fn is_null(&self) -> bool {
        matches!(self.head, ResidueHead::Null)
    }

    /// Conditional: the body is non-empty (`m > 0`).
    pub fn is_conditional(&self) -> bool {
        !self.body.is_empty()
    }

    /// A residue is *useful* for its sequence if its head is not a database
    /// atom, or its head atom occurs (under an extension of θ) in the
    /// sequence (§3).
    pub fn is_useful(&self) -> bool {
        !matches!(self.head, ResidueHead::Atom(_)) || self.useful_at.is_some()
    }
}

impl fmt::Display for Residue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, " -> {}", self.head)
    }
}

/// Builds the residue induced by a total subsumption match of `ic`'s
/// database atoms into `unfolding`'s body atoms.
///
/// Returns `None` when the residue is degenerate:
/// * a body condition is trivially false (the residue can never fire);
/// * the head comparison is trivially true (the residue says nothing);
/// * a body condition or head comparison still contains variables that θ
///   did not ground to sequence terms (it could never be evaluated at the
///   point of use).
///
/// A head comparison that is trivially *false* degrades to a null residue.
pub fn build_residue(ic: &Constraint, unfolding: &Unfolding, m: &Match) -> Option<Residue> {
    debug_assert!(m.is_total());
    let theta = m.theta.clone();

    let seq_vars: std::collections::BTreeSet<_> = unfolding.to_rule().vars().into_iter().collect();
    let grounded = |c: &Cmp| c.vars().all(|v| seq_vars.contains(&v));

    // Conditions implied by the sequence's own comparisons are discharged:
    // the residue fires unconditionally on every tree of this shape.
    let seq_cmps: Vec<Cmp> = unfolding
        .body
        .iter()
        .filter_map(|sl| sl.lit.as_cmp().copied())
        .collect();
    let mut body: Vec<Cmp> = Vec::new();
    for c in &ic.body_cmps {
        let ic_c = theta.apply_cmp(c);
        if ic_c.is_trivially_true() || seq_cmps.iter().any(|sc| sc.implies(&ic_c)) {
            continue;
        }
        if ic_c.is_trivially_false() || !grounded(&ic_c) {
            return None;
        }
        body.push(ic_c);
    }

    let head = match &ic.head {
        IcHead::None => ResidueHead::Null,
        IcHead::Cmp(c) => {
            let h = theta.apply_cmp(c);
            if h.is_trivially_true() {
                return None;
            }
            if h.is_trivially_false() {
                ResidueHead::Null
            } else if grounded(&h) {
                ResidueHead::Cmp(h)
            } else {
                return None;
            }
        }
        IcHead::Atom(a) => ResidueHead::Atom(theta.apply_atom(a)),
    };

    // Map the match's target indices (into the atom list) back to body
    // positions of the unfolding.
    let atom_positions: Vec<usize> = unfolding.body_atoms().map(|(i, _)| i).collect();
    let matched_body: Vec<usize> = m
        .onto
        .iter()
        .map(|o| atom_positions[o.expect("total match")])
        .collect();

    let mut residue = Residue {
        ic: ic.clone(),
        seq: unfolding.seq.clone(),
        body,
        head,
        theta,
        matched_body,
        useful_at: None,
    };
    attach_usefulness(&mut residue, unfolding);
    Some(residue)
}

/// Establishes usefulness of a fact residue's head atom `A` (§3): finds a
/// body atom `B` of the unfolding that the residue makes *redundant*.
///
/// Two criteria are tried in order:
///
/// 1. **Syntactic** (the paper's definition): θ extends so that `A·θ' = B`
///    (Example 3.1's variant residue).
/// 2. **Homomorphism-based**: there is a mapping `h` of the unfolding's
///    variables, fixing every variable that occurs in the head, the
///    recursive tail, any comparison, or the residue's conditions, such
///    that `h(B) = A` and `h` maps every other body atom into
///    `(body ∖ B) ∪ {A}`. Then deleting `B` preserves the answers on every
///    IC-satisfying database: a valuation of the reduced body composes with
///    `h` into a valuation of the full body, using the IC to supply `A`.
///    This is what licenses Example 3.2/4.2's elimination of `expert(P, F)`
///    — the co-occurring `field(T, F)` re-maps one level down.
///
/// `B` is never one of the atoms the IC matched on (the premises of the
/// implication must survive the deletion).
fn attach_usefulness(residue: &mut Residue, unfolding: &Unfolding) {
    let ResidueHead::Atom(head) = &residue.head else {
        return;
    };
    let excluded: BTreeSet<usize> = residue.matched_body.iter().copied().collect();
    if let Some((bi, new_head)) = hom_usefulness(residue, &head.clone(), unfolding, &excluded) {
        let step = unfolding.body[bi].step;
        residue.head = ResidueHead::Atom(new_head);
        residue.useful_at = Some(UsefulAt {
            body_index: bi,
            step,
        });
    }
}

/// Variables of the unfolding that a redundancy homomorphism must fix:
/// head variables, tail variables, variables of any body comparison, and
/// variables of the residue's conditions.
fn protected_vars(residue: &Residue, unfolding: &Unfolding) -> BTreeSet<Symbol> {
    let mut out: BTreeSet<Symbol> = unfolding.head.vars().collect();
    if let Some(t) = &unfolding.tail {
        out.extend(t.vars());
    }
    for sl in &unfolding.body {
        if let Some(c) = sl.lit.as_cmp() {
            out.extend(c.vars());
        }
    }
    for c in &residue.body {
        out.extend(c.vars());
    }
    out
}

fn hom_usefulness(
    residue: &Residue,
    head: &Atom,
    unfolding: &Unfolding,
    excluded: &BTreeSet<usize>,
) -> Option<(usize, Atom)> {
    let protected = protected_vars(residue, unfolding);
    let unfolding_vars: BTreeSet<Symbol> = unfolding.to_rule().vars().into_iter().collect();
    let body: Vec<(usize, &Atom)> = unfolding.body_atoms().collect();

    // Occurrence counts across the whole body (with multiplicity): used to
    // validate IC-existential wildcard positions.
    let mut occur: std::collections::BTreeMap<Symbol, usize> = std::collections::BTreeMap::new();
    for (_, a) in &body {
        for v in a.vars() {
            *occur.entry(v).or_insert(0) += 1;
        }
    }

    for &(bi, b) in &body {
        if excluded.contains(&bi) || b.pred != head.pred || b.arity() != head.arity() {
            continue;
        }
        // Seed: h(B) = A. `h` remaps unprotected unfolding variables.
        //
        // Positions where A still holds a *free IC variable* (an
        // existential the IC head introduces, like V7 in Example 3.1) are
        // wildcards — but soundly so only when B's argument there is an
        // unprotected variable occurring exactly once in the body: the
        // IC guarantees the existence of *some* value, so B's argument
        // must be free to absorb whatever that witness is. Binding a
        // wildcard to a head/tail/shared variable would claim the witness
        // equals an independently constrained value — unsound.
        let mut h = Subst::new();
        let mut ok = true;
        for (&bt, &at) in b.args.iter().zip(&head.args) {
            let free_ic_var = matches!(at, Term::Var(v) if !unfolding_vars.contains(&v));
            if free_ic_var {
                match bt {
                    Term::Var(v)
                        if !protected.contains(&v)
                            && occur.get(&v).copied() == Some(1)
                            && h.get(v).is_none() =>
                    {
                        // Mark the wildcard column as consumed so a second
                        // appearance of v cannot re-constrain it.
                        h.insert(v, Term::Var(v));
                    }
                    _ => {
                        ok = false;
                        break;
                    }
                }
                continue;
            }
            match bt {
                Term::Const(_) => {
                    if bt != at {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) if protected.contains(&v) => {
                    if Term::Var(v) != at {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => {
                    if !bind(&mut h, v, at) {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if !ok {
            continue;
        }
        // Targets: the body without B, plus A itself.
        let a_final = head.clone();
        let targets: Vec<&Atom> = body
            .iter()
            .filter(|&&(i, _)| i != bi)
            .map(|&(_, a)| a)
            .chain(std::iter::once(&a_final))
            .collect();
        let others: Vec<&Atom> = body
            .iter()
            .filter(|&&(i, _)| i != bi)
            .map(|&(_, a)| a)
            .collect();
        if extend_hom(&others, 0, &h, &protected, &targets) {
            return Some((bi, a_final));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::unfold;
    use crate::subsume::total_matches;
    use semrec_datalog::analysis::{classify_linear_pred, rectify};
    use semrec_datalog::atom::Pred;
    use semrec_datalog::parser::parse_unit;

    /// Example 3.2: works_with/expert transitivity over the eval program.
    fn eval_setup() -> (Vec<Residue>, Unfolding) {
        let unit = parse_unit(
            "eval(P, S, T) :- super(P, S, T).
             eval(P, S, T) :- works_with(P, P1), eval(P1, S, T), expert(P, F), field(T, F).
             ic ic1: works_with(P2, P1), expert(P1, F1) -> expert(P2, F1).",
        )
        .unwrap();
        let (prog, _) = rectify(&unit.program());
        let info = classify_linear_pred(&prog, Pred::new("eval")).unwrap();
        let u = unfold(&prog, &info, &[1, 1]).unwrap();
        let ic = &unit.constraints[0];
        let targets: Vec<&Atom> = u.body_atoms().map(|(_, a)| a).collect();
        let residues = total_matches(&ic.body_atoms, &targets)
            .iter()
            .filter_map(|m| build_residue(ic, &u, m))
            .collect();
        (residues, u)
    }

    #[test]
    fn example_3_2_residue_is_useful_unconditional_fact() {
        let (residues, _u) = eval_setup();
        assert!(!residues.is_empty());
        // The paper's residue: -> expert(P, F) matched against the level-1
        // expert atom (usefulness extends V-variables onto it).
        let useful: Vec<&Residue> = residues.iter().filter(|r| r.is_useful()).collect();
        assert!(!useful.is_empty());
        let r = useful[0];
        assert!(r.is_fact());
        assert!(!r.is_conditional());
        let ResidueHead::Atom(a) = &r.head else {
            panic!("expected atom head")
        };
        assert_eq!(a.pred, Pred::new("expert"));
        assert!(r.useful_at.is_some());
    }

    #[test]
    fn pruning_residue_from_denial() {
        // Example 4.3 in miniature: a 3-generation denial over anc.
        let unit = parse_unit(
            "anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).
             anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za), par(Z, Za, Y, Ya).
             ic: Ya <= 50, par(Z, Za, Y, Ya), par(Z1, Z1a, Z, Za), par(Z2, Z2a, Z1, Z1a) -> .",
        )
        .unwrap();
        let (prog, _) = rectify(&unit.program());
        let info = classify_linear_pred(&prog, Pred::new("anc")).unwrap();
        let u = unfold(&prog, &info, &[1, 1, 1]).unwrap();
        let ic = &unit.constraints[0];
        let targets: Vec<&Atom> = u.body_atoms().map(|(_, a)| a).collect();
        let ms = total_matches(&ic.body_atoms, &targets);
        assert!(!ms.is_empty());
        let r = build_residue(ic, &u, &ms[0]).unwrap();
        assert!(r.is_null());
        assert!(r.is_conditional());
        assert!(r.is_useful());
        assert_eq!(r.body.len(), 1);
        assert_eq!(r.body[0].to_string(), "Ya <= 50");
    }

    #[test]
    fn trivially_false_condition_drops_residue() {
        let unit = parse_unit(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- anc(X, Z), par(Z, Y).
             ic: par(A, B), 1 > 2 -> q(A).",
        )
        .unwrap();
        let (prog, _) = rectify(&unit.program());
        let info = classify_linear_pred(&prog, Pred::new("anc")).unwrap();
        let u = unfold(&prog, &info, &[1]).unwrap();
        let ic = &unit.constraints[0];
        let targets: Vec<&Atom> = u.body_atoms().map(|(_, a)| a).collect();
        let ms = total_matches(&ic.body_atoms, &targets);
        assert_eq!(ms.len(), 1);
        assert!(build_residue(ic, &u, &ms[0]).is_none());
    }

    #[test]
    fn trivially_false_head_cmp_becomes_null() {
        let unit = parse_unit(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- anc(X, Z), par(Z, Y).
             ic: par(A, B) -> 1 > 2.",
        )
        .unwrap();
        let (prog, _) = rectify(&unit.program());
        let info = classify_linear_pred(&prog, Pred::new("anc")).unwrap();
        let u = unfold(&prog, &info, &[1]).unwrap();
        let ic = &unit.constraints[0];
        let targets: Vec<&Atom> = u.body_atoms().map(|(_, a)| a).collect();
        let ms = total_matches(&ic.body_atoms, &targets);
        let r = build_residue(ic, &u, &ms[0]).unwrap();
        assert!(r.is_null());
    }

    #[test]
    fn display_formats() {
        let (residues, _) = eval_setup();
        let r = residues.iter().find(|r| r.is_useful()).unwrap();
        let s = r.to_string();
        assert!(s.contains("-> expert("), "got: {s}");
    }
}

#[cfg(test)]
mod condition_discharge_tests {
    use super::*;
    use crate::sequence::unfold;
    use crate::subsume::total_matches;
    use semrec_datalog::analysis::{classify_linear_pred, rectify};
    use semrec_datalog::parser::parse_unit;

    /// A rule that already guarantees the residue's condition turns a
    /// conditional residue into an unconditional one.
    #[test]
    fn sequence_comparisons_discharge_conditions() {
        let unit = parse_unit(
            "t(X, Y) :- base(X, Y).
             t(X, Y) :- a(X, Z), Z > 100, t(Z, Y).
             ic: a(U, V), V > 50 -> marked(V).",
        )
        .unwrap();
        let (prog, _) = rectify(&unit.program());
        let info = classify_linear_pred(&prog, semrec_datalog::Pred::new("t")).unwrap();
        let u = unfold(&prog, &info, &[1]).unwrap();
        let targets: Vec<&semrec_datalog::Atom> = u.body_atoms().map(|(_, a)| a).collect();
        let ms = total_matches(&unit.constraints[0].body_atoms, &targets);
        assert_eq!(ms.len(), 1);
        let r = build_residue(&unit.constraints[0], &u, &ms[0]).unwrap();
        // Z > 100 (in the rule) implies V > 50 (the condition): discharged.
        assert!(!r.is_conditional(), "residue: {r}");
    }
}
