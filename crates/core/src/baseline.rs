//! The evaluation-based semantic optimization baseline (Chakravarthy,
//! Grant & Minker TODS'90; Lee & Han ICDE'88).
//!
//! The evaluation paradigm "applies the residues to the subqueries being
//! computed in each iteration of the bottom-up evaluation" (§1). Two
//! consequences the paper contrasts against:
//!
//! 1. residues are computed w.r.t. *rules* (the per-iteration subqueries),
//!    not expansion sequences — so sequence-spanning optimizations like
//!    Examples 3.2/4.1/4.3 are simply out of reach;
//! 2. the residue computation and application happen at *run time*, every
//!    iteration, instead of once at compile time.
//!
//! [`evaluate_with_runtime_semantics`] models this honestly: each fixpoint
//! round recomputes the CGM rule-level residues (partial subsumption of the
//! expanded ICs against every rule), rewrites the rule set with the
//! directly-usable ones, reinstalls it into the engine, and only then runs
//! the round. The reported [`BaselineOutcome`] separates optimization time
//! from evaluation work.

use crate::expand::{rule_residues, StdResidue};
use crate::residue::ResidueHead;
use semrec_datalog::analysis::safety;
use semrec_datalog::constraint::Constraint;
use semrec_datalog::literal::Literal;
use semrec_datalog::program::Program;
use semrec_datalog::rule::Rule;
use semrec_engine::eval::{EvalResult, Evaluator, Strategy};
use semrec_engine::{Database, EngineError};
use std::time::{Duration, Instant};

/// The outcome of an evaluation-based optimized run.
#[derive(Debug)]
pub struct BaselineOutcome {
    /// The computed IDB and engine counters.
    pub result: EvalResult,
    /// Total time spent in per-iteration residue computation, rewriting,
    /// and plan reinstallation — the run-time overhead the program-
    /// transformation approach avoids.
    pub optimization_time: Duration,
    /// Number of fixpoint rounds.
    pub rounds: u64,
    /// Number of (IC, rule) residue computations performed across rounds.
    pub residue_computations: u64,
    /// Number of rule-level optimizations that were applicable.
    pub rule_level_optimizations: usize,
}

/// Rewrites `program` with the directly-usable rule-level residues of
/// `ics`. Returns the rewritten program, the number of (IC, rule) residue
/// computations performed, and the number of optimizations applied.
pub fn rule_level_rewrite(program: &Program, ics: &[Constraint]) -> (Program, u64, usize) {
    rule_level_rewrite_with(program, ics, &crate::push::PushPolicy::default(), None)
}

/// Like [`rule_level_rewrite`], with an explicit [`PushPolicy`] (enabling
/// e.g. small-relation atom introduction) and an optional restriction to
/// rules of particular head predicates (the compile-time optimizer uses
/// this for the *non-recursive* rules, which need no isolation).
///
/// [`PushPolicy`]: crate::push::PushPolicy
pub fn rule_level_rewrite_with(
    program: &Program,
    ics: &[Constraint],
    policy: &crate::push::PushPolicy,
    only_preds: Option<&std::collections::BTreeSet<semrec_datalog::atom::Pred>>,
) -> (Program, u64, usize) {
    let mut computations = 0u64;
    let mut applied = 0usize;
    let mut out: Vec<Rule> = Vec::new();
    for rule in &program.rules {
        if let Some(preds) = only_preds {
            if !preds.contains(&rule.head.pred) {
                out.push(rule.clone());
                continue;
            }
        }
        let mut variants: Vec<Rule> = vec![rule.clone()];
        for ic in ics {
            computations += 1;
            for residue in rule_residues(ic, rule) {
                if !residue.directly_usable() || residue.is_trivial() {
                    continue;
                }
                let before = variants.len();
                variants = variants
                    .into_iter()
                    .flat_map(|v| apply_std_residue_with(&v, &residue, policy))
                    .collect();
                if variants.len() != before
                    || variants.iter().any(|v| v.body.len() != rule.body.len())
                {
                    applied += 1;
                }
            }
        }
        out.append(&mut variants);
    }
    (Program::new(out), computations, applied)
}

/// Applies one directly-usable CGM residue to a rule, producing the variant
/// rules (identity if not applicable).
fn apply_std_residue_with(
    rule: &Rule,
    residue: &StdResidue,
    policy: &crate::push::PushPolicy,
) -> Vec<Rule> {
    debug_assert!(residue.body_atoms.is_empty());
    let conds = &residue.body_cmps;
    match &residue.head {
        // Null residue: the rule derives nothing when the conditions hold —
        // keep only the ¬E complements.
        ResidueHead::Null => {
            if !policy.pruning {
                return vec![rule.clone()];
            }
            let mut out = Vec::new();
            for j in 0..conds.len() {
                let mut v = rule.clone();
                for c in conds.iter().take(j) {
                    v.body.push(Literal::Cmp(*c));
                }
                v.body.push(Literal::Cmp(conds[j].negate()));
                out.push(v);
            }
            // Unconditional null: the rule is dropped entirely.
            out
        }
        // Implied comparison: add it as a (redundant but restricting)
        // filter on the E-branch.
        ResidueHead::Cmp(h) => {
            if !policy.introduction {
                return vec![rule.clone()];
            }
            if conds.is_empty() {
                let mut v = rule.clone();
                v.body.push(Literal::Cmp(*h));
                vec![v]
            } else {
                let mut out = Vec::new();
                let mut yes = rule.clone();
                for c in conds {
                    yes.body.push(Literal::Cmp(*c));
                }
                yes.body.push(Literal::Cmp(*h));
                out.push(yes);
                for j in 0..conds.len() {
                    let mut no = rule.clone();
                    for c in conds.iter().take(j) {
                        no.body.push(Literal::Cmp(*c));
                    }
                    no.body.push(Literal::Cmp(conds[j].negate()));
                    out.push(no);
                }
                out
            }
        }
        // Implied atom: eliminate it if it occurs in the rule body — either
        // syntactically, or with IC-existential positions (marked `` `ic ``
        // variables left unbound by the subsumption) matching rule
        // variables that occur nowhere else, so the existential witness is
        // free to take their value. Otherwise introduce it when the policy
        // marks the relation small.
        ResidueHead::Atom(a) => {
            let Some(pos) = find_eliminable(rule, a) else {
                if policy.introduction && policy.small_relations.contains(&a.pred) {
                    return introduce_atom(rule, a, conds);
                }
                return vec![rule.clone()];
            };
            if !policy.elimination {
                return vec![rule.clone()];
            }
            let mut yes = rule.clone();
            yes.body.remove(pos);
            for c in conds {
                yes.body.push(Literal::Cmp(*c));
            }
            if !yes.is_range_restricted() || !safety::unsafe_vars(&yes).is_empty() {
                return vec![rule.clone()];
            }
            if conds.is_empty() {
                return vec![yes];
            }
            let mut out = vec![yes];
            for j in 0..conds.len() {
                let mut no = rule.clone();
                for c in conds.iter().take(j) {
                    no.body.push(Literal::Cmp(*c));
                }
                no.body.push(Literal::Cmp(conds[j].negate()));
                out.push(no);
            }
            out
        }
    }
}

/// Finds a body literal that the residue-head atom `a` makes redundant.
/// A position matches when its arguments are equal, or when `a` holds an
/// unbound IC-existential (a `` `ic ``-marked variable) and the rule's
/// argument is a variable occurring exactly once in the entire rule — the
/// IC's existential witness can then absorb that variable's value.
fn find_eliminable(rule: &Rule, a: &semrec_datalog::atom::Atom) -> Option<usize> {
    use semrec_datalog::term::Term;
    let mut occurrences: std::collections::BTreeMap<semrec_datalog::Symbol, usize> =
        std::collections::BTreeMap::new();
    for v in rule.head.vars() {
        *occurrences.entry(v).or_insert(0) += 1;
    }
    for l in &rule.body {
        for v in l.vars() {
            *occurrences.entry(v).or_insert(0) += 1;
        }
    }
    'lits: for (i, l) in rule.body.iter().enumerate() {
        let Some(b) = l.as_atom() else { continue };
        if b.pred != a.pred || b.arity() != a.arity() {
            continue;
        }
        let mut used_wildcards: std::collections::BTreeSet<semrec_datalog::Symbol> =
            std::collections::BTreeSet::new();
        for (&at, &bt) in a.args.iter().zip(&b.args) {
            if at == bt {
                continue;
            }
            let existential = matches!(at, Term::Var(v) if v.as_str().ends_with("`ic"));
            let absorbable = matches!(
                bt,
                Term::Var(v) if occurrences.get(&v).copied() == Some(1)
            );
            let fresh_wildcard = match at {
                Term::Var(v) => used_wildcards.insert(v),
                Term::Const(_) => false,
            };
            if !(existential && absorbable && fresh_wildcard) {
                continue 'lits;
            }
        }
        return Some(i);
    }
    None
}

/// Conditional atom introduction at the rule level: the `E`-branch gains
/// the implied atom (IC-existential variables become fresh locals), the
/// complements carry `¬E`.
fn introduce_atom(
    rule: &Rule,
    atom: &semrec_datalog::atom::Atom,
    conds: &[semrec_datalog::literal::Cmp],
) -> Vec<Rule> {
    use semrec_datalog::subst::Subst;
    use semrec_datalog::symbol::Symbol;
    use semrec_datalog::term::Term;

    let rule_vars = rule.vars();
    let mut fresh = Subst::new();
    for v in atom.vars() {
        if !rule_vars.contains(&v) {
            fresh.insert(v, Term::Var(Symbol::fresh(v.as_str())));
        }
    }
    let atom = fresh.apply_atom(atom);

    let mut yes = rule.clone();
    for c in conds {
        yes.body.push(Literal::Cmp(*c));
    }
    yes.body.push(Literal::Atom(atom));
    if conds.is_empty() {
        return vec![yes];
    }
    let mut out = vec![yes];
    for j in 0..conds.len() {
        let mut no = rule.clone();
        for c in conds.iter().take(j) {
            no.body.push(Literal::Cmp(*c));
        }
        no.body.push(Literal::Cmp(conds[j].negate()));
        out.push(no);
    }
    out
}

/// Evaluates `program` with per-iteration (run-time) semantic optimization.
pub fn evaluate_with_runtime_semantics(
    db: &Database,
    program: &Program,
    ics: &[Constraint],
    strategy: Strategy,
) -> Result<BaselineOutcome, EngineError> {
    let mut optimization_time = Duration::ZERO;
    let mut residue_computations = 0u64;
    let mut rule_level_optimizations = 0usize;

    // Initial rewrite + engine setup.
    let t0 = Instant::now();
    let (rewritten, comps, opts) = rule_level_rewrite(program, ics);
    residue_computations += comps;
    rule_level_optimizations = rule_level_optimizations.max(opts);
    let mut ev = Evaluator::new(db, &rewritten, strategy)?;
    optimization_time += t0.elapsed();

    let mut rounds = 0u64;
    loop {
        rounds += 1;
        let changed = ev.step()?;
        if !changed {
            break;
        }
        // The evaluation paradigm redoes the residue work against the next
        // round's subqueries; the subqueries repeat for linear rules, so
        // this is pure overhead — which is the point of the comparison.
        let t = Instant::now();
        let (rewritten, comps, opts) = rule_level_rewrite(program, ics);
        residue_computations += comps;
        rule_level_optimizations = rule_level_optimizations.max(opts);
        ev.set_program(&rewritten)?;
        optimization_time += t.elapsed();
    }

    Ok(BaselineOutcome {
        result: ev.finish(),
        optimization_time,
        rounds,
        residue_computations,
        rule_level_optimizations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datalog::parser::parse_unit;
    use semrec_engine::evaluate;

    #[test]
    fn baseline_matches_plain_evaluation() {
        let unit = parse_unit(
            "anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).
             anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za), par(Z, Za, Y, Ya).
             ic: Ya <= 50, par(Z, Za, Y, Ya), par(Z1, Z1a, Z, Za), par(Z2, Z2a, Z1, Z1a) -> .",
        )
        .unwrap();
        let program = unit.program();
        let mut db = Database::new();
        for g in 0..5i64 {
            db.insert(
                "par",
                vec![
                    semrec_datalog::Value::Int(g),
                    semrec_datalog::Value::Int(20 + g * 30),
                    semrec_datalog::Value::Int(g + 1),
                    semrec_datalog::Value::Int(20 + (g + 1) * 30),
                ],
            );
        }
        let base = evaluate(&db, &program, Strategy::SemiNaive).unwrap();
        let rt =
            evaluate_with_runtime_semantics(&db, &program, &unit.constraints, Strategy::SemiNaive)
                .unwrap();
        assert_eq!(
            base.relation("anc").unwrap().sorted_tuples(),
            rt.result.relation("anc").unwrap().sorted_tuples()
        );
        assert!(rt.residue_computations >= rt.rounds);
        assert!(rt.rounds > 1);
    }

    #[test]
    fn rule_level_null_residue_prunes_rule() {
        // An IC that contradicts a rule's own condition at the rule level.
        let unit = parse_unit(
            "q(X) :- p(X, Y), Y > 100.
             ic: p(A, B), B > 100 -> .",
        )
        .unwrap();
        let (rw, _, applied) = rule_level_rewrite(&unit.program(), &unit.constraints);
        assert!(applied >= 1);
        // The rule splits into a complement that now carries both Y > 100
        // and Y <= 100 — dead, but correct; plain evaluation agrees.
        let mut db = Database::new();
        db.insert(
            "p",
            vec![
                semrec_datalog::Value::Int(1),
                semrec_datalog::Value::Int(50),
            ],
        );
        let a = evaluate(&db, &unit.program(), Strategy::SemiNaive).unwrap();
        let b = evaluate(&db, &rw, Strategy::SemiNaive).unwrap();
        assert_eq!(
            a.relation("q").unwrap().sorted_tuples(),
            b.relation("q").unwrap().sorted_tuples()
        );
    }

    #[test]
    fn existential_head_vars_cannot_capture_shared_rule_vars() {
        // ic: edge(X, Z) -> witness(Z, W) guarantees only ∃W. If the
        // rule's W is shared with another atom, eliminating witness(Z, W)
        // would be unsound even though the names coincide.
        let unit = parse_unit(
            "bad(X, Y) :- edge(X, Z), witness(Z, W), uses(W, Y).
             ic: edge(X, Z) -> witness(Z, W).",
        )
        .unwrap();
        let (rw, _, _) = rule_level_rewrite(&unit.program(), &unit.constraints);
        assert!(
            rw.rules
                .iter()
                .all(|r| r.body_atoms().any(|a| a.pred.name() == "witness")),
            "witness must not be eliminated when W is shared:\n{rw}"
        );

        // With W local to the witness atom, the elimination is sound and
        // must fire.
        let unit = parse_unit(
            "ok(X, Y) :- edge(X, Z), witness(Z, W), reach(Z, Y).
             ic: edge(X, Z) -> witness(Z, W).",
        )
        .unwrap();
        let (rw, _, applied) = rule_level_rewrite(&unit.program(), &unit.constraints);
        assert!(applied >= 1);
        assert!(rw
            .rules
            .iter()
            .any(|r| !r.body_atoms().any(|a| a.pred.name() == "witness")));
    }

    #[test]
    fn rule_level_elimination_applies_when_syntactic() {
        // boss/experienced inside one rule, IC premise inside the same rule.
        let unit = parse_unit(
            "t(E) :- boss(E, B, R), R = executive, experienced(B), big(B).
             ic: boss(E, B, R), R = executive -> experienced(B).",
        )
        .unwrap();
        let (rw, _, applied) = rule_level_rewrite(&unit.program(), &unit.constraints);
        assert!(applied >= 1, "rewritten:\n{rw}");
        // experienced(B) disappears from some variant.
        assert!(rw
            .rules
            .iter()
            .any(|r| !r.body_atoms().any(|a| a.pred.name() == "experienced")));
    }
}
