//! Expansion sequences and their unfoldings.
//!
//! For linear programs, proof trees are in 1–1 correspondence with
//! *expansion sequences* — sequences of rule indices applied top-down (§2).
//! An [`Unfolding`] is the conjunctive query obtained by composing the rules
//! of a sequence, with a deterministic per-step variable renaming. The same
//! renaming chain is reused by the §4 isolation transformation
//! ([`crate::isolate`]), so a residue computed against an unfolding can be
//! attached syntactically to the isolating rule of the step its variables
//! belong to.
//!
//! Renaming convention: step `i` (1-based) keeps the incoming recursive-call
//! terms for the rule's head variables and renames each body-local variable
//! `v` to `v~i`. `~` cannot appear in source identifiers, so the generated
//! names never collide with user variables.

use semrec_datalog::analysis::RecursionInfo;
use semrec_datalog::atom::Atom;
use semrec_datalog::error::Error;
use semrec_datalog::literal::Literal;
use semrec_datalog::program::Program;
use semrec_datalog::rule::Rule;
use semrec_datalog::subst::Subst;
use semrec_datalog::symbol::Symbol;
use semrec_datalog::term::Term;

/// A body literal of an unfolding, with provenance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SeqLiteral {
    /// The (renamed) literal.
    pub lit: Literal,
    /// 1-based step (level) the literal came from.
    pub step: usize,
    /// Index of the originating literal in that rule's body.
    pub source_index: usize,
}

/// The unfolding (composed conjunctive query) of an expansion sequence.
#[derive(Clone, Debug)]
pub struct Unfolding {
    /// The sequence of rule indices.
    pub seq: Vec<usize>,
    /// The head `p(X1, …, Xn)` (the canonical rectified head).
    pub head: Atom,
    /// Flattened body literals with provenance, in step order.
    pub body: Vec<SeqLiteral>,
    /// The trailing recursive call, if the last rule is recursive.
    pub tail: Option<Atom>,
    /// Per step: the substitution applied to that rule's variables.
    pub step_substs: Vec<Subst>,
    /// Per step `i` (0-based entry `i`): the incoming call arguments — the
    /// head arguments of the rule applied at step `i+1`. Entry 0 is the
    /// canonical head variables themselves.
    pub call_args: Vec<Vec<Term>>,
}

impl Unfolding {
    /// The database (non-recursive) body atoms in order, paired with their
    /// position in `body`.
    pub fn body_atoms(&self) -> impl Iterator<Item = (usize, &Atom)> {
        self.body
            .iter()
            .enumerate()
            .filter_map(|(i, sl)| sl.lit.as_atom().map(|a| (i, a)))
    }

    /// Renders the unfolding as a single rule (tail included), mainly for
    /// display and tests.
    pub fn to_rule(&self) -> Rule {
        let mut body: Vec<Literal> = self.body.iter().map(|sl| sl.lit.clone()).collect();
        if let Some(t) = &self.tail {
            body.push(Literal::Atom(t.clone()));
        }
        Rule::new(self.head.clone(), body)
    }
}

/// Renames local variable `v` of step `step` (1-based).
pub fn step_local(v: Symbol, step: usize) -> Symbol {
    Symbol::intern(&format!("{v}~{step}"))
}

/// Unfolds `seq` (rule indices into `program`, which must be rectified) for
/// the recursive predicate described by `info`.
///
/// Every rule of the sequence must define `info.pred`; every rule except
/// possibly the last must be recursive.
pub fn unfold(program: &Program, info: &RecursionInfo, seq: &[usize]) -> Result<Unfolding, Error> {
    if seq.is_empty() {
        return Err(Error::analysis("empty expansion sequence"));
    }
    for (pos, &ri) in seq.iter().enumerate() {
        if ri >= program.len() || program.rules[ri].head.pred != info.pred {
            return Err(Error::analysis(format!(
                "sequence element {ri} is not a rule for {}",
                info.pred
            )));
        }
        let recursive = info.recursive_rules.contains(&ri);
        if !recursive && pos + 1 != seq.len() {
            return Err(Error::analysis(format!(
                "non-recursive rule {ri} may only end a sequence"
            )));
        }
    }

    let head = program.rules[seq[0]].head.clone();
    let mut call_args: Vec<Vec<Term>> = vec![head.args.clone()];
    let mut body: Vec<SeqLiteral> = Vec::new();
    let mut step_substs: Vec<Subst> = Vec::new();
    let mut tail: Option<Atom> = None;

    for (idx, &ri) in seq.iter().enumerate() {
        let step = idx + 1;
        let rule = &program.rules[ri];
        // σ_step: head var of column t ↦ incoming call arg t; locals ↦ v~step.
        let mut sigma = Subst::new();
        for (t, arg) in rule.head.args.iter().zip(&call_args[idx]) {
            let v = t
                .as_var()
                .expect("rectified rule heads contain only variables");
            sigma.insert(v, *arg);
        }
        for v in rule.local_vars() {
            sigma.insert(v, Term::Var(step_local(v, step)));
        }

        let mut next_call: Option<Vec<Term>> = None;
        for (li, lit) in rule.body.iter().enumerate() {
            match lit {
                Literal::Atom(a) if a.pred == info.pred => {
                    let renamed = sigma.apply_atom(a);
                    next_call = Some(renamed.args.clone());
                    if idx + 1 == seq.len() {
                        tail = Some(renamed);
                    }
                }
                other => body.push(SeqLiteral {
                    lit: sigma.apply_literal(other),
                    step,
                    source_index: li,
                }),
            }
        }
        step_substs.push(sigma);
        if let Some(args) = next_call {
            call_args.push(args);
        } else {
            // Exit rule: must be last (checked above).
            debug_assert_eq!(idx + 1, seq.len());
        }
    }

    Ok(Unfolding {
        seq: seq.to_vec(),
        head,
        body,
        tail,
        step_substs,
        call_args,
    })
}

/// Enumerates expansion sequences of length `1..=max_len`: every element is
/// a recursive rule, except the last which may also be an exit rule.
pub fn enumerate_sequences(info: &RecursionInfo, max_len: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut prefix: Vec<usize> = Vec::new();
    fn go(
        info: &RecursionInfo,
        max_len: usize,
        prefix: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if !prefix.is_empty() {
            out.push(prefix.clone());
            // Each (purely recursive) prefix can also be closed by an exit
            // rule.
            for &e in &info.exit_rules {
                let mut s = prefix.clone();
                s.push(e);
                out.push(s);
            }
        } else {
            for &e in &info.exit_rules {
                out.push(vec![e]);
            }
        }
        if prefix.len() == max_len {
            return;
        }
        for &r in &info.recursive_rules {
            prefix.push(r);
            go(info, max_len, prefix, out);
            prefix.pop();
        }
    }
    go(info, max_len, &mut prefix, &mut out);
    // The recursion above can emit over-length exit-closed sequences; trim.
    out.retain(|s| s.len() <= max_len);
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datalog::analysis::{classify_linear_pred, rectify};
    use semrec_datalog::atom::Pred;
    use semrec_datalog::parser::parse_unit;

    fn setup(src: &str, pred: &str) -> (Program, RecursionInfo) {
        let p = parse_unit(src).unwrap().program();
        let (p, _) = rectify(&p);
        let info = classify_linear_pred(&p, Pred::new(pred)).unwrap();
        (p, info)
    }

    const ANC: &str = "anc(X,Y) :- par(X,Y). anc(X,Y) :- anc(X,Z), par(Z,Y).";

    #[test]
    fn unfold_single_recursive_rule() {
        let (p, info) = setup(ANC, "anc");
        let u = unfold(&p, &info, &[1]).unwrap();
        assert_eq!(u.body.len(), 1);
        assert!(u.tail.is_some());
        assert_eq!(
            u.to_rule().to_string(),
            "anc(X, Y) :- par(Z~1, Y), anc(X, Z~1)."
        );
    }

    #[test]
    fn unfold_two_levels_composes_variables() {
        let (p, info) = setup(ANC, "anc");
        let u = unfold(&p, &info, &[1, 1]).unwrap();
        // Level 1: anc(X, Z~1), par(Z~1, Y); level 2 head args = (X, Z~1),
        // so level 2 is par(Z~2, Z~1) and tail anc(X, Z~2).
        assert_eq!(
            u.to_rule().to_string(),
            "anc(X, Y) :- par(Z~1, Y), par(Z~2, Z~1), anc(X, Z~2)."
        );
        assert_eq!(u.body[0].step, 1);
        assert_eq!(u.body[1].step, 2);
    }

    #[test]
    fn unfold_closed_with_exit_rule() {
        let (p, info) = setup(ANC, "anc");
        let u = unfold(&p, &info, &[1, 0]).unwrap();
        assert!(u.tail.is_none());
        assert_eq!(
            u.to_rule().to_string(),
            "anc(X, Y) :- par(Z~1, Y), par(X, Z~1)."
        );
    }

    #[test]
    fn exit_rule_only_last() {
        let (p, info) = setup(ANC, "anc");
        assert!(unfold(&p, &info, &[0, 1]).is_err());
        assert!(unfold(&p, &info, &[]).is_err());
    }

    #[test]
    fn eval_example_unfolding() {
        // Example 3.2's program: the r1 r1 sequence must contain two
        // works_with and two expert atoms with the chained professor vars.
        let (p, info) = setup(
            "eval(P, S, T) :- super(P, S, T).
             eval(P, S, T) :- works_with(P, P1), eval(P1, S, T), expert(P, F), field(T, F).",
            "eval",
        );
        let u = unfold(&p, &info, &[1, 1]).unwrap();
        let atoms: Vec<String> = u.body_atoms().map(|(_, a)| a.to_string()).collect();
        assert_eq!(
            atoms,
            vec![
                "works_with(P, P1~1)",
                "expert(P, F~1)",
                "field(T, F~1)",
                "works_with(P1~1, P1~2)",
                "expert(P1~1, F~2)",
                "field(T, F~2)",
            ]
        );
        assert_eq!(u.tail.as_ref().unwrap().to_string(), "eval(P1~2, S, T)");
    }

    #[test]
    fn enumerate_bounded() {
        let (_, info) = setup(ANC, "anc");
        let seqs = enumerate_sequences(&info, 2);
        // [0], [1], [1,0], [1,1]
        assert_eq!(seqs, vec![vec![0], vec![1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn enumerate_two_recursive_rules() {
        let (_, info) = setup(
            "p(X) :- e(X). p(X) :- a(X,Y), p(Y). p(X) :- b(X,Y), p(Y).",
            "p",
        );
        let seqs = enumerate_sequences(&info, 2);
        // len1: [0],[1],[2]; len2: [1,0],[1,1],[1,2],[2,0],[2,1],[2,2]
        assert_eq!(seqs.len(), 9);
    }

    #[test]
    fn provenance_maps_to_alpha_rules() {
        let (p, info) = setup(ANC, "anc");
        let u = unfold(&p, &info, &[1, 1]).unwrap();
        // step_substs[1] must rename rule 1's local Z to Z~2 and head X,Y to
        // the incoming call args X, Z~1.
        let s2 = &u.step_substs[1];
        assert_eq!(s2.apply_term(Term::var("Y")), Term::var("Z~1"));
        assert_eq!(s2.apply_term(Term::var("X")), Term::var("X"));
        assert_eq!(s2.apply_term(Term::var("Z")), Term::var("Z~2"));
    }
}
