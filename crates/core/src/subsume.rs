//! Clause subsumption: full, partial, and *free* (§2).
//!
//! A clause `C` subsumes `D` if a substitution θ over `C`'s variables maps
//! `C` to a subclause of `D`. *Partial* subsumption maps a subclause of `C`
//! into `D`. *Free* subsumption (Definition 2.1) performs the test on the
//! clauses as written, without first converting the IC to expanded form —
//! so the subsuming substitution maps IC variables directly onto the target
//! clause's terms and no equality constraints are introduced.

use semrec_datalog::atom::Atom;
use semrec_datalog::subst::Subst;
use semrec_datalog::unify::match_atom;

/// One way of (freely) subsuming a set of pattern atoms into target atoms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Match {
    /// The subsuming substitution: pattern variables ↦ target terms.
    pub theta: Subst,
    /// For each pattern atom, the index of the target atom it mapped onto
    /// (`None` for unmatched atoms in partial matches).
    pub onto: Vec<Option<usize>>,
}

impl Match {
    /// Number of matched pattern atoms.
    pub fn matched_count(&self) -> usize {
        self.onto.iter().filter(|o| o.is_some()).count()
    }

    /// True if every pattern atom was matched ("maximal" subsumption in the
    /// §3 sense when the patterns are an IC's database atoms).
    pub fn is_total(&self) -> bool {
        self.onto.iter().all(|o| o.is_some())
    }
}

/// All *total* free subsumption matches of `patterns` into `targets`:
/// consistent substitutions θ with `patternsᵢ·θ = targets[onto[i]]` for
/// every `i`. Different pattern atoms may map onto the same target.
pub fn total_matches(patterns: &[Atom], targets: &[&Atom]) -> Vec<Match> {
    let mut out = Vec::new();
    let mut onto: Vec<Option<usize>> = vec![None; patterns.len()];
    go_total(patterns, targets, 0, &Subst::new(), &mut onto, &mut out);
    out
}

fn go_total(
    patterns: &[Atom],
    targets: &[&Atom],
    i: usize,
    theta: &Subst,
    onto: &mut Vec<Option<usize>>,
    out: &mut Vec<Match>,
) {
    if i == patterns.len() {
        out.push(Match {
            theta: theta.clone(),
            onto: onto.clone(),
        });
        return;
    }
    for (j, target) in targets.iter().enumerate() {
        let mut t = theta.clone();
        if match_atom(&mut t, &patterns[i], target) {
            onto[i] = Some(j);
            go_total(patterns, targets, i + 1, &t, onto, out);
            onto[i] = None;
        }
    }
}

/// All *maximal partial* matches: matches where no additional pattern atom
/// could be matched consistently. Returns only matches with at least
/// `min_matched` matched atoms.
pub fn maximal_partial_matches(
    patterns: &[Atom],
    targets: &[&Atom],
    min_matched: usize,
) -> Vec<Match> {
    let mut all: Vec<Match> = Vec::new();
    let mut onto: Vec<Option<usize>> = vec![None; patterns.len()];
    go_partial(patterns, targets, 0, &Subst::new(), &mut onto, &mut all);
    // Keep only maximal ones (no other match whose matched set strictly
    // contains this one's with the same mappings on the shared part — we
    // use the simpler criterion of maximal matched *count* per matched-set
    // pattern, which is what residue generation needs).
    all.retain(|m| m.matched_count() >= min_matched.max(1));
    let mut maximal: Vec<Match> = Vec::new();
    for m in &all {
        let dominated = all.iter().any(|other| {
            other.matched_count() > m.matched_count()
                && m.onto
                    .iter()
                    .zip(&other.onto)
                    .all(|(a, b)| a.is_none() || a == b)
        });
        if !dominated && !maximal.contains(m) {
            maximal.push(m.clone());
        }
    }
    maximal
}

fn go_partial(
    patterns: &[Atom],
    targets: &[&Atom],
    i: usize,
    theta: &Subst,
    onto: &mut Vec<Option<usize>>,
    out: &mut Vec<Match>,
) {
    if i == patterns.len() {
        out.push(Match {
            theta: theta.clone(),
            onto: onto.clone(),
        });
        return;
    }
    // Option 1: leave pattern i unmatched.
    onto[i] = None;
    go_partial(patterns, targets, i + 1, theta, onto, out);
    // Option 2: match it against each compatible target.
    for (j, target) in targets.iter().enumerate() {
        let mut t = theta.clone();
        if match_atom(&mut t, &patterns[i], target) {
            onto[i] = Some(j);
            go_partial(patterns, targets, i + 1, &t, onto, out);
            onto[i] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datalog::parser::parse_atom;
    use semrec_datalog::term::Term;

    fn a(s: &str) -> Atom {
        parse_atom(s).unwrap()
    }

    #[test]
    fn simple_total_match() {
        let pats = vec![a("works_with(P2, P1)"), a("expert(P1, F1)")];
        let t1 = a("works_with(P, Q1)");
        let t2 = a("expert(Q1, F2)");
        let targets = vec![&t1, &t2];
        let ms = total_matches(&pats, &targets);
        assert_eq!(ms.len(), 1);
        let theta = &ms[0].theta;
        assert_eq!(theta.apply_term(Term::var("P2")), Term::var("P"));
        assert_eq!(theta.apply_term(Term::var("P1")), Term::var("Q1"));
        assert_eq!(theta.apply_term(Term::var("F1")), Term::var("F2"));
    }

    #[test]
    fn inconsistent_sharing_fails() {
        // b's first arg must equal a's second, but targets break the chain.
        let pats = vec![a("a(X, Y)"), a("b(Y, Z)")];
        let t1 = a("a(U, V)");
        let t2 = a("b(W, V)");
        let targets = vec![&t1, &t2];
        assert!(total_matches(&pats, &targets).is_empty());
    }

    #[test]
    fn multiple_total_matches() {
        let pats = vec![a("e(X, Y)")];
        let t1 = a("e(A, B)");
        let t2 = a("e(B, C)");
        let targets = vec![&t1, &t2];
        assert_eq!(total_matches(&pats, &targets).len(), 2);
    }

    #[test]
    fn constants_must_agree() {
        let pats = vec![a("r(X, executive)")];
        let t1 = a("r(U, manager)");
        let t2 = a("r(U, executive)");
        let targets = vec![&t1, &t2];
        let ms = total_matches(&pats, &targets);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].onto[0], Some(1));
    }

    #[test]
    fn pattern_constant_matches_target_var_never() {
        // Free subsumption is one-way: pattern constants only match equal
        // constants, never target variables.
        let pats = vec![a("r(3)")];
        let t = a("r(X)");
        let targets = vec![&t];
        assert!(total_matches(&pats, &targets).is_empty());
    }

    #[test]
    fn partial_matches_are_maximal() {
        let pats = vec![a("a(X, Y)"), a("b(Y, Z)"), a("c(Z, W)")];
        let t1 = a("a(U, V)");
        let t2 = a("b(V, W1)");
        let targets = vec![&t1, &t2];
        let ms = maximal_partial_matches(&pats, &targets, 1);
        // The maximal match covers a and b; c stays unmatched. Submatches
        // (only a, only b) are dominated and dropped.
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].matched_count(), 2);
        assert_eq!(ms[0].onto, vec![Some(0), Some(1), None]);
    }

    #[test]
    fn non_injective_mapping_allowed() {
        let pats = vec![a("e(X, Y)"), a("e(Y, Z)")];
        let t = a("e(A, A)");
        let targets = vec![&t];
        // X=A, Y=A, Z=A: both patterns onto the single target.
        let ms = total_matches(&pats, &targets);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].onto, vec![Some(0), Some(0)]);
    }
}
