//! The Chakravarthy–Grant–Minker *expanded form* of ICs and the standard
//! (non-free) residue computation against single rules (§2, Example 2.1).
//!
//! In the expanded form no constant appears among the arguments of any
//! database predicate and each argument is a distinct variable; the
//! original constants and variable sharing become explicit equality atoms.
//! Partial subsumption of the expanded IC against a rule body then yields
//! residues that may carry residual equalities and unmatched database
//! atoms — precisely what makes them weaker than §2's free residues for
//! program transformation (the equalities anticipate a specific query).

use crate::residue::ResidueHead;
use crate::subsume::maximal_partial_matches;
use semrec_datalog::atom::Atom;
use semrec_datalog::constraint::{Constraint, IcHead};
use semrec_datalog::literal::{Cmp, CmpOp};
use semrec_datalog::rule::Rule;
use semrec_datalog::subst::Subst;
use semrec_datalog::symbol::Symbol;
use semrec_datalog::term::Term;
use std::fmt;

/// An IC in expanded form.
#[derive(Clone, Debug)]
pub struct ExpandedIc {
    /// Database atoms with all-distinct fresh variable arguments.
    pub atoms: Vec<Atom>,
    /// The introduced equality constraints.
    pub eqs: Vec<Cmp>,
    /// The original evaluable atoms, rewritten over the fresh variables.
    pub cmps: Vec<Cmp>,
    /// The head, rewritten over the fresh variables.
    pub head: IcHead,
}

/// Converts an IC to expanded form.
pub fn expand_ic(ic: &Constraint) -> ExpandedIc {
    let mut first_var_for: std::collections::BTreeMap<Symbol, Term> =
        std::collections::BTreeMap::new();
    let mut eqs: Vec<Cmp> = Vec::new();
    let mut atoms: Vec<Atom> = Vec::new();

    for (ai, a) in ic.body_atoms.iter().enumerate() {
        let mut args = Vec::with_capacity(a.arity());
        for (col, t) in a.args.iter().enumerate() {
            let fresh = Term::Var(Symbol::intern(&format!("V~{ai}~{col}")));
            match t {
                Term::Const(c) => eqs.push(Cmp::new(fresh, CmpOp::Eq, Term::Const(*c))),
                Term::Var(v) => match first_var_for.get(v) {
                    Some(&orig) => eqs.push(Cmp::new(fresh, CmpOp::Eq, orig)),
                    None => {
                        first_var_for.insert(*v, fresh);
                    }
                },
            }
            args.push(fresh);
        }
        atoms.push(Atom::new(a.pred, args));
    }

    // Rewrite the evaluable atoms and head over the representative fresh
    // variables; variables that never occur in a database atom stay.
    let rename = Subst::from_pairs(first_var_for.iter().map(|(&v, &t)| (v, t)));
    ExpandedIc {
        atoms,
        eqs,
        cmps: ic.body_cmps.iter().map(|c| rename.apply_cmp(c)).collect(),
        head: ic.head.apply(&rename),
    }
}

/// A standard (CGM) residue of an IC w.r.t. a single rule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StdResidue {
    /// Unmatched database atoms remaining in the residue body.
    pub body_atoms: Vec<Atom>,
    /// Residual evaluable conditions (including surviving equalities).
    pub body_cmps: Vec<Cmp>,
    /// The residue head.
    pub head: ResidueHead,
    /// How many IC atoms participated in the subsumption.
    pub matched: usize,
}

impl StdResidue {
    /// A residue is *directly usable* for optimization when its body has no
    /// database atoms and no variable-to-variable equalities left — i.e. it
    /// does not anticipate subgoals of a specific query (§3's motivation
    /// for maximal free subsumption).
    pub fn directly_usable(&self) -> bool {
        self.body_atoms.is_empty()
            && self
                .body_cmps
                .iter()
                .all(|c| !(c.op == CmpOp::Eq && c.lhs.is_var() && c.rhs.is_var()))
    }

    /// True when the residue imposes nothing (tautological head).
    pub fn is_trivial(&self) -> bool {
        match &self.head {
            ResidueHead::Cmp(c) => c.is_trivially_true(),
            _ => false,
        }
    }
}

impl fmt::Display for StdResidue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for a in &self.body_atoms {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{a}")?;
        }
        for c in &self.body_cmps {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{c}")?;
        }
        if first {
            write!(f, "true")?;
        }
        write!(f, " -> {}", self.head)
    }
}

/// Computes the CGM residues of `ic` w.r.t. `rule` via partial subsumption
/// of the expanded form against the rule's database body atoms.
///
/// Every IC variable is first renamed apart with a reserved `` `ic ``
/// marker, so an IC-existential head variable can never *accidentally*
/// coincide with a rule variable (which would let downstream users treat a
/// merely-existentially-implied atom as syntactically implied).
pub fn rule_residues(ic: &Constraint, rule: &Rule) -> Vec<StdResidue> {
    let apart: Subst = ic
        .vars()
        .into_iter()
        .map(|v| (v, Term::Var(Symbol::intern(&format!("{v}`ic")))))
        .collect();
    let ic = ic.apply(&apart);
    let ic = &ic;
    let exp = expand_ic(ic);
    let targets: Vec<&Atom> = rule.body_atoms().collect();
    let mut out = Vec::new();
    for m in maximal_partial_matches(&exp.atoms, &targets, 1) {
        let theta = &m.theta;
        // Instantiate the equalities and simplify: resolve fresh variables
        // that remained unmatched by substituting them away when equated to
        // something known.
        let mut pending: Vec<Cmp> = exp.eqs.iter().map(|e| theta.apply_cmp(e)).collect();
        let mut extra = Subst::new();
        let residual_eqs: Vec<Cmp>;
        let mut infeasible = false;
        loop {
            let mut progressed = false;
            let mut next = Vec::new();
            for e in pending {
                let e = extra.apply_cmp(&e);
                if e.is_trivially_true() {
                    progressed = true;
                } else if e.is_trivially_false() {
                    infeasible = true;
                } else {
                    // Substitute away a free fresh variable if possible.
                    let free = |t: Term| matches!(t, Term::Var(v) if v.as_str().starts_with("V~"));
                    if free(e.lhs) {
                        let Term::Var(v) = e.lhs else { unreachable!() };
                        extra.insert(v, e.rhs);
                        progressed = true;
                    } else if free(e.rhs) {
                        let Term::Var(v) = e.rhs else { unreachable!() };
                        extra.insert(v, e.lhs);
                        progressed = true;
                    } else {
                        next.push(e);
                    }
                }
            }
            pending = next;
            if infeasible || !progressed {
                residual_eqs = pending;
                break;
            }
        }
        if infeasible {
            continue;
        }

        let full = theta.compose(&extra);
        let mut body_cmps: Vec<Cmp> = residual_eqs
            .into_iter()
            .map(|c| full.apply_cmp(&c))
            .collect();
        for c in &exp.cmps {
            let g = full.apply_cmp(c);
            if !g.is_trivially_true() {
                body_cmps.push(g);
            }
        }
        let body_atoms: Vec<Atom> = exp
            .atoms
            .iter()
            .zip(&m.onto)
            .filter(|(_, onto)| onto.is_none())
            .map(|(a, _)| full.apply_atom(a))
            .collect();
        let head = match &exp.head {
            IcHead::None => ResidueHead::Null,
            IcHead::Atom(a) => ResidueHead::Atom(full.apply_atom(a)),
            IcHead::Cmp(c) => {
                let g = full.apply_cmp(c);
                if g.is_trivially_false() {
                    ResidueHead::Null
                } else {
                    ResidueHead::Cmp(g)
                }
            }
        };
        let r = StdResidue {
            body_atoms,
            body_cmps,
            head,
            matched: m.matched_count(),
        };
        if !out.contains(&r) {
            out.push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datalog::parser::{parse_constraints, parse_rule};

    /// Example 2.1's program rule r0 and IC (primes written as W-variables).
    fn example_2_1() -> (Constraint, Rule) {
        let ic = parse_constraints("ic: a(V1, V2, V3), b(V2, V4), c(V4, V5, V6) -> d(V6, V7).")
            .unwrap()
            .remove(0);
        let rule = parse_rule(
            "p(X1, X2, X3, X4, X5, X6) :- a(X1, X2, X4), b(W2, X3), c(W3, W4, X5),
             d(W5, X6), p(X1, W2, W3, W4, W5, W6).",
        )
        .unwrap();
        (ic, rule)
    }

    #[test]
    fn expanded_form_shape() {
        let (ic, _) = example_2_1();
        let exp = expand_ic(&ic);
        assert_eq!(exp.atoms.len(), 3);
        // All arguments distinct variables.
        let mut seen = std::collections::BTreeSet::new();
        for a in &exp.atoms {
            for t in &a.args {
                assert!(t.is_var());
                assert!(seen.insert(*t), "argument {t} repeated");
            }
        }
        // V2 and V4 each shared once → two equalities.
        assert_eq!(exp.eqs.len(), 2);
    }

    #[test]
    fn expanded_form_constants_become_equalities() {
        let ic = parse_constraints("ic: boss(E, B, executive) -> experienced(B).")
            .unwrap()
            .remove(0);
        let exp = expand_ic(&ic);
        assert_eq!(exp.eqs.len(), 1);
        assert_eq!(exp.eqs[0].op, CmpOp::Eq);
        assert!(exp.eqs[0].rhs.as_const().is_some());
    }

    #[test]
    fn example_2_1_standard_residue() {
        // The paper: partial subsumption of ic against r0 yields the residue
        // W2 = X2, W3 = X3 -> d(X5, V7) (their X2'=X2, X3'=X3 -> d(X5,X6)).
        let (ic, rule) = example_2_1();
        let residues = rule_residues(&ic, &rule);
        let best = residues
            .iter()
            .max_by_key(|r| r.matched)
            .expect("some residue");
        assert_eq!(best.matched, 3);
        assert!(best.body_atoms.is_empty());
        assert_eq!(best.body_cmps.len(), 2);
        let conds: Vec<String> = best.body_cmps.iter().map(|c| c.to_string()).collect();
        assert!(
            conds.contains(&"W2 = X2".to_string()) || conds.contains(&"X2 = W2".to_string()),
            "conds: {conds:?}"
        );
        let ResidueHead::Atom(h) = &best.head else {
            panic!("expected atom head")
        };
        assert_eq!(h.pred.name(), "d");
        assert_eq!(h.args[0], Term::var("X5"));
        // Not directly usable: it carries var-var equalities.
        assert!(!best.directly_usable());
    }

    #[test]
    fn example_3_2_standard_residue_is_weak() {
        // ic1 against r1: the CGM residue is P = P1 -> expert(P, F1-ish) —
        // trivial in context (paper, Example 3.2). It must not be directly
        // usable.
        let ic = parse_constraints("ic: works_with(P2, P1), expert(P1, F1) -> expert(P2, F1).")
            .unwrap()
            .remove(0);
        let rule = parse_rule(
            "eval(P, S, T) :- works_with(P, P1), eval(P1, S, T), expert(P, F), field(T, F).",
        )
        .unwrap();
        let residues = rule_residues(&ic, &rule);
        let full: Vec<&StdResidue> = residues.iter().filter(|r| r.matched == 2).collect();
        assert!(!full.is_empty());
        assert!(full.iter().all(|r| !r.directly_usable()));
    }

    #[test]
    fn unmatched_atoms_stay_in_body() {
        let ic = parse_constraints("ic: a(X, Y), z(Y, W) -> d(W).")
            .unwrap()
            .remove(0);
        let rule = parse_rule("p(X1) :- a(X1, X2), b(X2, X1).").unwrap();
        let residues = rule_residues(&ic, &rule);
        let best = residues.iter().max_by_key(|r| r.matched).unwrap();
        assert_eq!(best.matched, 1);
        assert_eq!(best.body_atoms.len(), 1);
        assert_eq!(best.body_atoms[0].pred.name(), "z");
        // z's first argument was instantiated to the rule's X2.
        assert_eq!(best.body_atoms[0].args[0], Term::var("X2"));
    }

    #[test]
    fn denial_gives_null_residue() {
        let ic = parse_constraints("ic: a(X, Y), X > 100 -> .")
            .unwrap()
            .remove(0);
        let rule = parse_rule("p(U, V) :- a(U, V), b(V, U).").unwrap();
        let residues = rule_residues(&ic, &rule);
        let best = residues.iter().max_by_key(|r| r.matched).unwrap();
        assert_eq!(best.head, ResidueHead::Null);
        assert_eq!(best.body_cmps.len(), 1);
        assert_eq!(best.body_cmps[0].to_string(), "U > 100");
    }
}
