#!/usr/bin/env bash
# Tier-1 gate + bench emission, one reproducible command, fully offline.
#
# The workspace's offline-build policy (std-only deps, see DESIGN.md
# "Engine internals") makes --offline a hard guarantee, not an
# optimization: if this script fails at dependency resolution, a
# registry dep leaked back into a manifest.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo run -p semrec-bench --release --offline --bin harness -- bench --json --quick
