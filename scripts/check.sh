#!/usr/bin/env bash
# Tier-1 gate + bench emission, one reproducible command, fully offline.
#
# The workspace's offline-build policy (std-only deps, see DESIGN.md
# "Engine internals") makes --offline a hard guarantee, not an
# optimization: if this script fails at dependency resolution, a
# registry dep leaked back into a manifest.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
# Robustness suite: the deterministic fault-injection failpoints only
# exist under this feature, so the agreement-or-typed-error property
# (tests/fault_injection.rs) gets its own test leg.
cargo test -q --offline --features failpoints
# Format gate: the whole workspace is rustfmt-clean; drift fails the
# build before clippy ever runs.
cargo fmt --check
# Lint gate: the workspace is warning-free; keep it that way.
cargo clippy --all-targets --offline -- -D warnings
# Scaling gate: fails if 4-thread fixpoint time exceeds 1-thread time by
# >10% on any workload with rows_idb >= 50_000, so parallel regressions
# can't merge silently. Runs without --json on purpose: the checked-in
# BENCH_fixpoint.json is the full-size run, not the quick CI sizes.
# Throughput gate: single-thread rows/sec on each workload must stay
# within 40% of the checked-in baseline. The tolerance is wide because
# the quick gate is a single un-medianed pass and the kernelized
# workloads now finish in tens of milliseconds, where this box's
# ambient jitter alone measures 20-30%; the regressions the gate exists
# to catch (losing the kernel route, re-allocating per probe, losing
# dictionary-map residency) are 2-10x+, far outside any noise band.
# Quick sizes differ from the baseline's full sizes, so the gate
# matches workloads by name+params and only checks those present in
# both — the quick-mode fanout/org/university workloads are sized to
# overlap the baseline set.
# Kernel coverage gate: every kernel-bench workload must route >=90% of
# its plan executions through the batch kernels, so eligibility
# regressions (a shape silently falling back to the step machine) fail
# CI instead of just slowing it down.
# Regrow gate: the EWMA drain pre-sizing must keep mid-insert dedup
# rehashes at zero on every generated workload; a non-zero count means
# the unique-rate estimator or the deferred-reservation plumbing broke.
# Routing gate: the cost planner's chosen route must not run slower
# than the fixed rewrite ladder (beyond a 25% + 2 ms noise band), must
# keep cardinality mispredictions within 10x on every routed scenario,
# and must spend under 2% of evaluation time planning on the large
# fanout workload — so a broken estimator or a planner that taxes the
# hot path fails CI rather than silently degrading the default route.
# Baseline freshness: loading --baseline also verifies the checked-in
# JSON carries the harness's current schema_version, so a stale
# BENCH_fixpoint.json (missing new sections/fields) fails here instead
# of silently gating against fields that no longer line up.
cargo run -p semrec-bench --release --offline --bin harness -- bench --quick --assert-scaling \
  --assert-routing --baseline BENCH_fixpoint.json --assert-throughput 40 \
  --assert-kernel-coverage 90 --assert-no-regrow 0

# ---- serve leg -------------------------------------------------------
# Deterministic fault schedules over the server sites (serve.accept,
# serve.reader, wal.append, wal.fsync, snapshot.publish): every seeded
# schedule must end in the exact serial-replay answer or a typed error.
# (The blanket failpoints leg above runs these too; the explicit leg
# keeps the serve suite a named, individually-runnable gate.)
cargo test -q --offline --features failpoints --test serve_faults
cargo test -q --offline --test serve_agreement

# Kill-and-recover WAL smoke test through the real CLI: commit via a
# script session, restart and observe the replay, tear the log's tail
# (recovers with the acknowledged prefix), then corrupt acknowledged
# history (must refuse with exit code 8, never serve diverged answers).
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
cat > "$SMOKE/prog.dl" <<'EOF'
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- edge(X, Z), reach(Z, Y).
edge(1, 2). edge(2, 3).
EOF
printf '+edge(3, 4).\ncommit.\nquery reach(1, Y).\nquit.\n' > "$SMOKE/write.txt"
printf 'query reach(1, Y).\nquit.\n' > "$SMOKE/read.txt"
# Replies are captured to files, not piped: `grep -q` on a live pipe
# exits at first match and races the daemon's remaining writes.
SEMREC=target/release/semrec
"$SEMREC" serve "$SMOKE/prog.dl" --wal "$SMOKE/serve.wal" --script "$SMOKE/write.txt" \
  > "$SMOKE/write.out"
grep -q 'reach(1, 4)\.' "$SMOKE/write.out" \
  || { echo "serve smoke: commit not visible" >&2; exit 1; }
"$SEMREC" serve "$SMOKE/prog.dl" --wal "$SMOKE/serve.wal" --script "$SMOKE/read.txt" \
  > "$SMOKE/replay.out" 2> "$SMOKE/replay.err"
grep -q 'reach(1, 4)\.' "$SMOKE/replay.out" \
  || { echo "serve smoke: replay lost the commit" >&2; exit 1; }
grep -q '1 commit(s) replayed' "$SMOKE/replay.err" \
  || { echo "serve smoke: restart did not replay the WAL" >&2; exit 1; }
cp "$SMOKE/serve.wal" "$SMOKE/corrupt.wal"
# Torn tail: drop the last 5 bytes — an interrupted, unacknowledged
# append. Recovery truncates it away and serves the surviving prefix.
truncate -s -5 "$SMOKE/serve.wal"
"$SEMREC" serve "$SMOKE/prog.dl" --wal "$SMOKE/serve.wal" --script "$SMOKE/read.txt" \
  2> "$SMOKE/torn.err" > /dev/null \
  || { echo "serve smoke: torn tail must recover" >&2; exit 1; }
grep -q 'torn WAL tail truncated' "$SMOKE/torn.err" \
  || { echo "serve smoke: torn tail not reported" >&2; exit 1; }
# Corruption: flip a payload byte of the acknowledged record. This is
# not recoverable history — the daemon must refuse with exit code 8.
printf '\xff' | dd of="$SMOKE/corrupt.wal" bs=1 seek=12 conv=notrunc status=none
rc=0
"$SEMREC" serve "$SMOKE/prog.dl" --wal "$SMOKE/corrupt.wal" --script "$SMOKE/read.txt" \
  > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 8 ] || { echo "serve smoke: corrupt WAL exited $rc, want 8" >&2; exit 1; }

# BENCH_serve.json freshness: the quick serve bench validates the
# checked-in artifact's schema_version and required fields before its
# own timing pass (overload shed count must be recorded nonzero).
# Serve read gate: on the fresh quick run, indexed bound-goal reads must
# come in at <= 20% of the scan fallback's median and the repeated-goal
# leg must hit the answer cache >= 90% of the time — losing the probe
# route or the stamp-keyed cache fails CI, not just the latency chart.
# (The batching criterion is NOT gated at quick sizes: group commit only
# pays off when COW publication dominates per-tx cost, which needs the
# full-size chain; the checked-in BENCH_serve.json records that run's
# batched_write.speedup.)
cargo run -p semrec-bench --release --offline --bin harness -- serve-bench --quick \
  --baseline BENCH_serve.json --assert-serve-read
