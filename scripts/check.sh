#!/usr/bin/env bash
# Tier-1 gate + bench emission, one reproducible command, fully offline.
#
# The workspace's offline-build policy (std-only deps, see DESIGN.md
# "Engine internals") makes --offline a hard guarantee, not an
# optimization: if this script fails at dependency resolution, a
# registry dep leaked back into a manifest.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
# Robustness suite: the deterministic fault-injection failpoints only
# exist under this feature, so the agreement-or-typed-error property
# (tests/fault_injection.rs) gets its own test leg.
cargo test -q --offline --features failpoints
# Format gate: the whole workspace is rustfmt-clean; drift fails the
# build before clippy ever runs.
cargo fmt --check
# Lint gate: the workspace is warning-free; keep it that way.
cargo clippy --all-targets --offline -- -D warnings
# Scaling gate: fails if 4-thread fixpoint time exceeds 1-thread time by
# >10% on any workload with rows_idb >= 50_000, so parallel regressions
# can't merge silently. Runs without --json on purpose: the checked-in
# BENCH_fixpoint.json is the full-size run, not the quick CI sizes.
# Throughput gate: single-thread rows/sec on each workload must stay
# within 40% of the checked-in baseline. The tolerance is wide because
# the quick gate is a single un-medianed pass and the kernelized
# workloads now finish in tens of milliseconds, where this box's
# ambient jitter alone measures 20-30%; the regressions the gate exists
# to catch (losing the kernel route, re-allocating per probe, losing
# dictionary-map residency) are 2-10x+, far outside any noise band.
# Quick sizes differ from the baseline's full sizes, so the gate
# matches workloads by name+params and only checks those present in
# both — the quick-mode fanout/org/university workloads are sized to
# overlap the baseline set.
# Kernel coverage gate: every kernel-bench workload must route >=90% of
# its plan executions through the batch kernels, so eligibility
# regressions (a shape silently falling back to the step machine) fail
# CI instead of just slowing it down.
# Regrow gate: the EWMA drain pre-sizing must keep mid-insert dedup
# rehashes at zero on every generated workload; a non-zero count means
# the unique-rate estimator or the deferred-reservation plumbing broke.
# Baseline freshness: loading --baseline also verifies the checked-in
# JSON carries the harness's current schema_version, so a stale
# BENCH_fixpoint.json (missing new sections/fields) fails here instead
# of silently gating against fields that no longer line up.
cargo run -p semrec-bench --release --offline --bin harness -- bench --quick --assert-scaling \
  --baseline BENCH_fixpoint.json --assert-throughput 40 --assert-kernel-coverage 90 \
  --assert-no-regrow 0
